"""Group-vectorized decode: one batched call per policy-homogeneous span.

The serving scheduler orders decode slots so that sequences running the
same policy flavour are contiguous (``policy-homogeneous grouping``, see
:func:`policy_group_key`).  This module holds the machinery that turns each
such span into **one** vectorized selector/eviction/attention call instead
of ``S`` per-sequence ``decode_step`` invocations:

* :func:`group_spans_for` — contiguous same-key runs of a batch's policy
  stacks (the model-level fallback when the scheduler's spans are not
  available).
* :func:`supports_group_decode` — whether a policy instance can safely take
  the vectorized path.  A subclass that overrides ``decode_step`` *below*
  the class providing ``decode_step_group`` changed the per-step semantics
  without updating the group path, so it is routed through the per-sequence
  loop — external policy subclasses keep working unmodified.
* :func:`gather_group_kv` — stacked gather of every member's cached K/V
  rows through the paged pool's block tables into one padded
  ``[S, T_max, h, d]`` tensor plus a length mask (sequences sharing a pool
  arena cost a single arena gather for the whole span).
* :func:`batched_group_attention` — masked multi-sequence single-query
  attention over the padded tensors; padded (and unselected) entries are
  masked to ``-inf`` so their softmax weight is exactly zero.
* :func:`run_group_decode` — the dispatch loop used by the attention layer:
  vectorized spans go through ``decode_step_group``, everything else falls
  back to the per-sequence ``decode_step`` loop, with both paths counted in
  a :class:`GroupDecodeStats` telemetry record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from .attention import softmax
from .kv_pool import gather_padded, poison_padding_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kv_pool import BlockTable
    from .policy import KVCachePolicy


@dataclass
class GroupDecodeStats:
    """Cumulative decode-dispatch telemetry (survives across engine steps).

    ``group_calls`` counts vectorized ``decode_step_group`` invocations
    (one per policy-group span per layer); ``fallback_calls`` counts
    per-sequence ``decode_step`` dispatches (unsupported policies,
    heterogeneous spans and singleton spans); ``vectorized_sequences``
    counts sequence-steps served by a vectorized call.  All three cover
    *multi-sequence* decode steps only: a batch of one rides the
    bit-exact serial path, which is not a group dispatch and is not
    counted.
    """

    group_calls: int = 0
    fallback_calls: int = 0
    vectorized_sequences: int = 0


def policy_group_key(policies: Sequence["KVCachePolicy"]) -> str:
    """Grouping key of one sequence's policy stack.

    Class name of the layer-0 policy, refined by the selector type for
    policies that carry one (UniCAIM exact vs CAM) — sequences with equal
    keys run identical selector math, which is what the batched per-group
    selector implementation needs to be contiguous.
    """
    head = policies[0]
    key = type(head).__name__
    selector = getattr(head, "selector", None)
    if selector is not None:
        key = f"{key}/{type(selector).__name__}"
    return key


def group_spans_for(
    policy_stacks: Sequence[Sequence["KVCachePolicy"]],
) -> List[Tuple[str, int, int]]:
    """Contiguous same-key runs ``(key, start, length)`` over a batch.

    The batch order is taken as given (never re-sorted here); the serving
    scheduler already emits decode slots policy-homogeneously, so its spans
    and these runs coincide.
    """
    spans: List[Tuple[str, int, int]] = []
    for i, stack in enumerate(policy_stacks):
        key = policy_group_key(stack)
        if spans and spans[-1][0] == key:
            name, start, length = spans[-1]
            spans[-1] = (name, start, length + 1)
        else:
            spans.append((key, i, 1))
    return spans


def _mro_definer(cls: type, name: str) -> Optional[type]:
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def supports_group_decode(policy: "KVCachePolicy") -> bool:
    """Whether ``policy`` can take the vectorized group-decode path.

    True when its class provides a real ``decode_step_group`` override
    *and* ``decode_step`` has not been re-overridden by a more derived
    class (which would change per-step semantics the group path does not
    know about — such subclasses fall back to the per-sequence loop).
    """
    from .policy import KVCachePolicy  # local: avoids a module cycle

    cls = type(policy)
    group_owner = _mro_definer(cls, "decode_step_group")
    if group_owner is None or group_owner is KVCachePolicy:
        return False
    step_owner = _mro_definer(cls, "decode_step")
    if step_owner is None:
        return False
    if step_owner is not group_owner and issubclass(step_owner, group_owner):
        return False
    return True


def gather_group_kv(
    tables: Sequence["BlockTable"],
    slot_lists: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stacked gather of a group's cached rows into padded tensors.

    Returns ``(keys [S, T, h, d], values [S, T, h, d], lengths [S],
    valid [S, T])`` where row ``s`` holds member ``s``'s rows in the order
    of ``slot_lists[s]`` and ``valid`` masks the padding tail.
    """
    keys, values, lengths = gather_padded(tables, slot_lists)
    T = keys.shape[1]
    valid = np.arange(T)[None, :] < lengths[:, None]
    return keys, values, lengths, valid


def batched_group_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    attend: np.ndarray,
    scales: Optional[np.ndarray] = None,
    raw_scores: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Masked multi-sequence single-query attention.

    ``queries [S, h, d]``, padded ``keys``/``values [S, T, h, d]`` and a
    boolean ``attend [S, T]`` mask (padding and, for sparse policies,
    unselected tokens are False).  Masked entries are scored ``-inf``, so
    their softmax weight is exactly ``0.0`` and the output equals attention
    over the attended subset alone.  ``scales`` is the per-member softmax
    scale; ``raw_scores [S, h, T]`` (the *unscaled* dot products) may be
    passed in when the caller already computed them for selection.

    Returns ``(outputs [S, h, d], raw_scores [S, h, T])``.
    """
    q = np.asarray(queries, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if raw_scores is None:
        k = np.asarray(keys, dtype=np.float64)
        raw_scores = np.einsum("sthd,shd->sht", k, q)
    if scales is not None:
        masked = raw_scores * np.asarray(scales, dtype=np.float64)[:, None, None]
    else:
        masked = raw_scores.copy()
    masked[np.broadcast_to(~attend[:, None, :], masked.shape)] = -np.inf
    probs = softmax(masked, axis=-1)
    if poison_padding_enabled():
        # Poisoned padding rows are NaN and 0.0 * NaN is NaN, so the
        # contraction below would smear the poison into every output even
        # though the masked softmax weight is exactly zero.  Zeroing the
        # masked rows keeps the debug mode transparent: a 0.0 weight times
        # a 0.0 value contributes the same exact 0.0 as in normal mode.
        v = np.where(attend[:, :, None, None], v, 0.0)
    outputs = np.einsum("sht,sthd->shd", probs, v)
    return outputs, raw_scores


def run_group_decode(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    positions: Sequence[int],
    policies: Sequence["KVCachePolicy"],
    spans: Optional[Sequence[Tuple[str, int, int]]] = None,
    telemetry: Optional[GroupDecodeStats] = None,
) -> np.ndarray:
    """One decode step for ``B`` sequences, dispatched per policy group.

    ``queries``/``keys``/``values`` are the projected per-sequence tensors
    ``[B, h, d]`` (one row per sequence).  Each span whose policies support
    the vectorized path executes as a single
    :meth:`~repro.core.policy.KVCachePolicy.decode_step_group` call; spans
    of length one, heterogeneous spans and unsupported policies run the
    per-sequence ``decode_step`` loop.  Returns head outputs ``[B, h, d]``.
    """
    batch = len(policies)
    if spans is None:
        spans = group_spans_for([[p] for p in policies])
    head_out = np.empty(
        (batch, queries.shape[1], queries.shape[2]), dtype=np.float64
    )
    for _key, start, length in spans:
        stop = start + length
        members = list(policies[start:stop])
        vectorized = False
        if length > 1 and supports_group_decode(members[0]) and all(
            type(p) is type(members[0]) for p in members
        ):
            out = members[0].decode_step_group(
                queries[start:stop],
                keys[start:stop],
                values[start:stop],
                [int(p) for p in positions[start:stop]],
                members,
            )
            if out is not None:
                head_out[start:stop] = out
                vectorized = True
                if telemetry is not None:
                    telemetry.group_calls += 1
                    telemetry.vectorized_sequences += length
        if not vectorized:
            for b in range(start, stop):
                head_out[b] = policies[b].decode_step(
                    queries[b], keys[b], values[b], int(positions[b])
                )
                if telemetry is not None:
                    telemetry.fallback_calls += 1
    return head_out


__all__ = [
    "GroupDecodeStats",
    "batched_group_attention",
    "gather_group_kv",
    "group_spans_for",
    "policy_group_key",
    "run_group_decode",
    "supports_group_decode",
]
