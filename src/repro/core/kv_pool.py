"""Paged KV storage: a shared page arena with refcounts and copy-on-write.

The paper's hardware model is a *fixed* number of CAM rows shared between
heavy and generated tokens.  The serving analogue of that constraint is a
fixed byte budget of KV memory shared between *sequences*: instead of one
dense K/V array per sequence per layer (memory scales with
``max_batch_size x capacity`` even when most slots are empty), a
:class:`PagedKVPool` owns a single per-layer arena of fixed-size pages and
every sequence maps its logical cache slots onto pool pages through a
:class:`BlockTable` — the vLLM-style paged-attention layout, specialised to
this repo's policy-managed caches.

Three properties make the pool the enabling architecture for the serving
roadmap:

* **On-demand allocation** — pages are allocated on first write, so a
  sequence whose policy retains 32 tokens costs one page, not a full
  ``capacity``-sized array.  Admission can therefore be gated on *page
  availability* rather than a fixed slot grid.
* **Refcounted sharing** — a page referenced by several block tables (e.g.
  a shared prompt prefix inserted once by the
  :class:`~repro.serving.prefix_cache.PrefixCache`) is stored once.
  :class:`SharedKVPages` is the handle that carries such a page run between
  its owner and adopters.
* **Copy-on-write** — writing through a block table to a page whose
  refcount is above one first splits the page (allocates a private copy),
  so sharers never observe each other's evictions/overwrites and the paged
  engine stays token-identical to the dense path.

Since the quantised-storage refactor the pool also owns a **storage
codec** (:mod:`repro.core.kv_codec`): arenas can hold int8 or packed int4
rows with per-page scale metadata, quantising on write and dequantising
inside the gathers, so every consumer above the pool (caches, policies,
group decode) keeps reading plain float rows while the same byte budget
holds several times more pages.  The default :class:`~repro.core.kv_codec.FloatCodec`
is bit-identical to the pre-codec arena.  A
:class:`~repro.core.kv_codec.MixedPrecisionConfig` keeps sink/recent
pages full precision in a per-page overlay.

Everything here is plain numpy and single-threaded, matching the rest of
the behavioural model.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import count as _itercount
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .kv_codec import CodecSpec, MixedPrecisionConfig, resolve_codec

#: Page size (tokens per page) used when a store creates its own private
#: pool.  Small enough that short sequences do not over-allocate, large
#: enough that block tables stay short.
DEFAULT_PAGE_SIZE = 32

#: Debug mode: when enabled, :func:`gather_padded` overwrites the padding
#: tail of the returned tensors with NaN instead of leaving whatever rows
#: the aliased page happens to hold.  Any consumer that forgets to mask
#: padding then poisons its output loudly (NaN propagates through every
#: matmul/softmax) instead of silently reading plausible-looking garbage.
#: Costs one extra write over the padding region per gather — keep it off
#: outside tests.  Initialised from ``REPRO_POISON_PADDING``.
_POISON_PADDING = os.environ.get("REPRO_POISON_PADDING", "") not in ("", "0")


def set_poison_padding(enabled: bool) -> bool:
    """Toggle padding poisoning in :func:`gather_padded`; returns the old value."""
    global _POISON_PADDING
    old = _POISON_PADDING
    _POISON_PADDING = bool(enabled)
    return old


def poison_padding_enabled() -> bool:
    return _POISON_PADDING


class PoolExhaustedError(RuntimeError):
    """A fixed-size pool has no free page left.

    Serving code treats this as an admission/back-pressure signal: the
    engine fails the affected request closed (``finish_reason="error"``)
    or keeps it queued until pages are released — it never crashes the
    batch.
    """


# ----------------------------------------------------------------------
# Arena allocation seam
# ----------------------------------------------------------------------


class ArenaAllocator:
    """Allocation seam for pool arena arrays.

    :class:`PagedKVPool` obtains its backing arrays (K/V pages and, for
    quantised codecs, the per-page scale arrays) through an allocator
    instead of calling ``np.zeros`` directly.  The default allocator *is*
    ``np.zeros`` — the dense in-process path is bit-identical by
    construction — while :class:`SharedArenaAllocator` backs the same
    arrays with ``multiprocessing.shared_memory`` segments so another
    process (the cluster parent) can map them without pickling.
    """

    def zeros(self, shape: Sequence[int], dtype: np.dtype) -> np.ndarray:
        """Return a zero-filled array of ``shape``/``dtype``."""
        return np.zeros(tuple(shape), dtype=dtype)

    def free(self, array: np.ndarray) -> None:
        """Release an array previously returned by :meth:`zeros`.

        The default allocator lets the GC handle it; shared allocators
        unlink the backing segment.  Called by growable pools when they
        replace their arrays.
        """


_DEFAULT_ALLOCATOR = ArenaAllocator()
_ARENA_ALLOCATOR: ArenaAllocator = _DEFAULT_ALLOCATOR
_ARENA_SEQ = _itercount()


def current_arena_allocator() -> ArenaAllocator:
    """The ambient allocator new pools pick up when none is passed."""
    return _ARENA_ALLOCATOR


@contextmanager
def arena_allocator(allocator: ArenaAllocator) -> Iterator[ArenaAllocator]:
    """Make ``allocator`` ambient for pools built inside the block.

    This is how the cluster's process workers give an *unmodified*
    zero-argument ``engine_factory`` shared-memory arenas: the child
    wraps the factory call, and every ``PagedKVPool``/``KVPoolGroup``
    built inside (without an explicit ``allocator=``) lands in shared
    memory.  Pools created outside the block — e.g. private per-policy
    pools allocated later while serving — keep the process-local default.
    """
    global _ARENA_ALLOCATOR
    previous = _ARENA_ALLOCATOR
    _ARENA_ALLOCATOR = allocator
    try:
        yield allocator
    finally:
        _ARENA_ALLOCATOR = previous


def _untrack_shared_memory(shm: object) -> None:
    # CPython 3.11 registers segments with the resource tracker on both
    # create *and* attach (bpo-39959; ``track=`` only exists from 3.13).
    # We manage the lifecycle manually — creator unlinks in a ``finally``,
    # the cluster parent sweeps by name prefix as a crash fallback — so
    # tracker entries would only produce spurious double-unlink warnings
    # at interpreter exit.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink_shared_memory(shm: object) -> None:
    # ``SharedMemory.unlink`` unregisters from the resource tracker as a
    # side effect; since creation untracked the segment, re-register
    # first so that internal unregister finds a matching entry (a bare
    # unlink makes the tracker process log a KeyError traceback).
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    shm.unlink()


class SharedArenaAllocator(ArenaAllocator):
    """Arena allocator backed by ``multiprocessing.shared_memory``.

    Each :meth:`zeros` call creates one named segment (zero-filled) and
    returns a numpy view over it.  :meth:`manifest` lists
    ``(name, shape, dtype)`` for every live segment — a picklable
    description another process can :meth:`attach` to map the same
    memory.  The creator owns the namespace: :meth:`unlink` removes every
    segment name (existing mappings stay valid, per POSIX), and
    :meth:`close` drops this process's mappings.

    Segment names are ``{prefix}-{n}``; callers that need a crash-safe
    sweep (unlink segments of a worker that died before reporting its
    manifest) should pass an explicit ``prefix`` they remember.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        from multiprocessing import shared_memory  # noqa: F401 — probe

        if prefix is None:
            prefix = f"repro-arena-{os.getpid()}-{next(_ARENA_SEQ)}"
        if "/" in prefix:
            raise ValueError("shared-memory prefix must not contain '/'")
        self.prefix = prefix
        self._segments: Dict[str, object] = {}
        self._shapes: Dict[str, Tuple[Tuple[int, ...], str]] = {}
        self._by_addr: Dict[int, str] = {}
        self._zombies: List[object] = []
        self._count = 0

    def zeros(self, shape: Sequence[int], dtype: np.dtype) -> np.ndarray:
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        name = f"{self.prefix}-{self._count}"
        self._count += 1
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        _untrack_shared_memory(shm)
        array: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        array.fill(0)
        self._segments[name] = shm
        self._shapes[name] = (shape, dtype.str)
        self._by_addr[array.__array_interface__["data"][0]] = name
        return array

    def free(self, array: np.ndarray) -> None:
        """Unlink the segment backing ``array`` (growable-pool realloc).

        The name disappears immediately; the mapping itself is released
        when the last view dies (we keep the segment object as a zombie
        until :meth:`close`, since numpy still exports its buffer here).
        """
        name = self._by_addr.pop(array.__array_interface__["data"][0], None)
        if name is None:
            return
        shm = self._segments.pop(name)
        self._shapes.pop(name, None)
        try:
            _unlink_shared_memory(shm)
        except FileNotFoundError:
            pass
        self._zombies.append(shm)

    def manifest(self) -> List[Tuple[str, Tuple[int, ...], str]]:
        """Picklable ``(name, shape, dtype_str)`` list of live segments."""
        return [
            (name, shape, dtype_str)
            for name, (shape, dtype_str) in self._shapes.items()
        ]

    @property
    def segment_names(self) -> List[str]:
        return list(self._segments)

    def unlink(self) -> None:
        """Remove every live segment name (idempotent)."""
        for shm in self._segments.values():
            try:
                _unlink_shared_memory(shm)
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Drop this process's mappings (best effort: numpy views may
        still export the buffer; those segments close at process exit)."""
        for shm in list(self._segments.values()) + self._zombies:
            try:
                shm.close()
            except BufferError:
                pass

    @staticmethod
    def unlink_by_prefix(prefix: str) -> List[str]:
        """Crash-fallback sweep: unlink every ``/dev/shm`` segment whose
        name starts with ``prefix``; returns the names removed.  No-op on
        hosts without a ``/dev/shm`` tmpfs."""
        removed: List[str] = []
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            return removed
        for entry in os.listdir(shm_dir):
            if entry.startswith(prefix):
                try:
                    os.unlink(os.path.join(shm_dir, entry))
                    removed.append(entry)
                except OSError:
                    pass
        return removed


class AttachedArena:
    """A read/write mapping of another process's shared arena.

    Built from a :meth:`SharedArenaAllocator.manifest`; ``arrays[name]``
    is a numpy view of the live segment.  :meth:`close` drops the
    mappings (never unlinks — the creator owns the namespace).
    """

    def __init__(self, manifest: Sequence[Tuple[str, Sequence[int], str]]) -> None:
        from multiprocessing import shared_memory

        self.arrays: Dict[str, np.ndarray] = {}
        self._segments: List[object] = []
        for name, shape, dtype_str in manifest:
            shm = shared_memory.SharedMemory(name=name, create=False)
            _untrack_shared_memory(shm)
            self._segments.append(shm)
            self.arrays[name] = np.ndarray(
                tuple(int(s) for s in shape),
                dtype=np.dtype(dtype_str),
                buffer=shm.buf,
            )

    def close(self) -> None:
        self.arrays.clear()
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:
                pass
        self._segments.clear()


@dataclass
class PoolStats:
    """Counters accumulated over a pool's lifetime."""

    page_allocs: int = 0
    page_frees: int = 0
    cow_splits: int = 0
    prefix_pages_adopted: int = 0
    peak_pages_in_use: int = 0
    gathers: int = 0
    fp_promotions: int = 0
    fp_demotions: int = 0


class PagedKVPool:
    """A page arena of key/value rows with a free list and refcounts.

    Parameters
    ----------
    page_size:
        Tokens per page.
    num_heads, head_dim:
        Geometry of each stored K/V row (``[num_heads, head_dim]``).
    num_pages:
        Arena size in pages.  ``None`` makes the pool *growable* (used for
        private per-policy pools outside the serving engine); a fixed pool
        raises :class:`PoolExhaustedError` when empty.
    dtype:
        *Compute* dtype of the pool: what gathers return and what the
        float codec stores.  The serving engine uses float64 (the model's
        compute dtype); :class:`~repro.core.kv_cache.SlotKVCache` coerces
        writes through its own dtype first, so quantisation behaviour is
        independent of the arena dtype.
    codec:
        Storage codec (see :mod:`repro.core.kv_codec`): ``None``/``"fp"``
        stores at ``dtype`` (bit-identical passthrough), ``"int8"`` /
        ``"int4"`` store quantised rows with per-page scale metadata and
        dequantise inside every gather.
    mixed_precision:
        Optional :class:`~repro.core.kv_codec.MixedPrecisionConfig`
        keeping sink/recent pages full precision (quantised codecs only).
    """

    def __init__(
        self,
        page_size: int,
        num_heads: int,
        head_dim: int,
        num_pages: Optional[int] = None,
        dtype: np.dtype = np.float64,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
        allocator: Optional[ArenaAllocator] = None,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if num_heads < 1 or head_dim < 1:
            raise ValueError("num_heads and head_dim must be >= 1")
        if num_pages is not None and num_pages < 1:
            raise ValueError("num_pages must be >= 1 (or None for growable)")
        self.page_size = int(page_size)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.dtype = np.dtype(dtype)
        self.codec = resolve_codec(codec, self.dtype)
        if self.codec.is_float and self.codec.storage_dtype != self.dtype:
            raise ValueError(
                f"float codec dtype {self.codec.storage_dtype} does not "
                f"match pool dtype {self.dtype}"
            )
        if mixed_precision is not None and self.codec.is_float:
            raise ValueError("mixed_precision requires a quantised codec")
        self.mixed_precision = mixed_precision
        self.fixed = num_pages is not None
        # K/V arenas and scale arrays go through the allocator seam so a
        # shared-memory allocator can back them; process-local
        # bookkeeping (fp flags, free list, refcounts) stays plain.
        self.allocator = (
            allocator if allocator is not None else current_arena_allocator()
        )

        initial = int(num_pages) if self.fixed else 0
        packed = self.codec.packed_dim(self.head_dim)
        shape = (initial, self.page_size, self.num_heads, packed)
        self._keys = self.allocator.zeros(shape, self.codec.storage_dtype)
        self._values = self.allocator.zeros(shape, self.codec.storage_dtype)
        if self.codec.is_float:
            self._key_scales: Optional[np.ndarray] = None
            self._value_scales: Optional[np.ndarray] = None
            self._fp_flags: Optional[np.ndarray] = None
        else:
            scale_shape = (initial, self.page_size, self.num_heads)
            self._key_scales = self.allocator.zeros(
                scale_shape, self.codec.scale_dtype
            )
            self._value_scales = self.allocator.zeros(
                scale_shape, self.codec.scale_dtype
            )
            self._fp_flags = np.zeros(initial, dtype=bool)
        # Full-precision overlay of pages pinned fp by the mixed-precision
        # policy: page -> [page_size, h, d] arrays at the compute dtype.
        self._fp_keys: Dict[int, np.ndarray] = {}
        self._fp_values: Dict[int, np.ndarray] = {}
        # Free pages as a stack popped from the end: descending init order
        # means pages are handed out ascending (0 first), which keeps tests
        # and debugging deterministic.
        self._free: List[int] = list(range(initial - 1, -1, -1))
        self._refcounts: List[int] = [0] * initial
        self._in_use = 0
        self.stats = PoolStats()

    @classmethod
    def from_byte_budget(
        cls,
        page_size: int,
        num_heads: int,
        head_dim: int,
        total_bytes: int,
        dtype: np.dtype = np.float64,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
        allocator: Optional[ArenaAllocator] = None,
    ) -> "PagedKVPool":
        """Fixed pool holding as many pages as ``total_bytes`` affords.

        Page cost is computed from the *storage codec* (quantised bytes
        plus scale metadata), so the same byte budget yields ~4x/8x the
        pages under int8/int4 — that is the whole point of quantised
        storage.
        """
        codec_obj = resolve_codec(codec, np.dtype(dtype))
        page_bytes = page_size * codec_obj.kv_row_bytes(num_heads, head_dim)
        num_pages = max(1, int(total_bytes) // page_bytes)
        return cls(
            page_size,
            num_heads,
            head_dim,
            num_pages=num_pages,
            dtype=dtype,
            codec=codec_obj,
            mixed_precision=mixed_precision,
            allocator=allocator,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        """Arena size in pages (current size for growable pools)."""
        return len(self._refcounts)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def pages_in_use(self) -> int:
        return self._in_use

    @property
    def page_bytes(self) -> int:
        """Bytes of K + V storage per page *in the storage codec*.

        For quantised codecs this includes the per-page scale metadata —
        the honest cost a byte budget is divided by.
        """
        return int(
            self.page_size * self.codec.kv_row_bytes(self.num_heads, self.head_dim)
        )

    @property
    def fp_page_bytes(self) -> int:
        """Bytes one full-precision overlay page adds on top of its arena slot."""
        return int(
            2 * self.page_size * self.num_heads * self.head_dim * self.dtype.itemsize
        )

    @property
    def fp_pages_in_use(self) -> int:
        """Allocated pages currently pinned full precision by the overlay."""
        return len(self._fp_keys)

    def page_is_fp(self, page: int) -> bool:
        return self._fp_flags is not None and bool(self._fp_flags[page])

    def page_bytes_of(self, page: int) -> int:
        """Actual storage cost of one page (arena slot + any fp overlay)."""
        self._check_page(page)
        if self.page_is_fp(page):
            return self.page_bytes + self.fp_page_bytes
        return self.page_bytes

    @property
    def bytes_in_use(self) -> int:
        return self._in_use * self.page_bytes + len(self._fp_keys) * self.fp_page_bytes

    @property
    def bytes_total(self) -> int:
        return (
            self.total_pages * self.page_bytes
            + len(self._fp_keys) * self.fp_page_bytes
        )

    def refcount(self, page: int) -> int:
        self._check_page(page)
        return self._refcounts[page]

    def is_shared(self, page: int) -> bool:
        return self.refcount(page) > 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Allocate a page with refcount 1."""
        if not self._free:
            if self.fixed:
                raise PoolExhaustedError(
                    f"KV pool exhausted: all {self.total_pages} pages "
                    f"({self.bytes_total} bytes) are in use"
                )
            self._grow()
        page = self._free.pop()
        self._refcounts[page] = 1
        self._in_use += 1
        self.stats.page_allocs += 1
        if self._in_use > self.stats.peak_pages_in_use:
            self.stats.peak_pages_in_use = self._in_use
        return page

    def incref(self, page: int) -> None:
        """Add a reference to an allocated page."""
        self._check_allocated(page)
        self._refcounts[page] += 1

    def decref(self, page: int) -> None:
        """Drop a reference; the page returns to the free list at zero.

        Dropping a reference to a free page raises — a double free would
        otherwise silently hand the same page to two sequences.
        """
        self._check_page(page)
        if self._refcounts[page] <= 0:
            raise ValueError(f"double free of pool page {page}")
        self._refcounts[page] -= 1
        if self._refcounts[page] == 0:
            self._free.append(page)
            self._in_use -= 1
            self.stats.page_frees += 1
            if self._fp_flags is not None and self._fp_flags[page]:
                self._fp_flags[page] = False
                del self._fp_keys[page]
                del self._fp_values[page]

    def decref_many(self, pages: Iterable[int]) -> int:
        """Bulk :meth:`decref`: drop one reference to every page in ``pages``.

        Returns how many pages actually went back to the free list
        (refcount reached zero).  This is the release path of whole
        tables and shared runs — retiring or *preempting* a sequence
        frees its pages in one accounting pass, and the caller gets the
        reclaimed-page count for telemetry.
        """
        before = len(self._free)
        for page in pages:
            self.decref(page)
        return len(self._free) - before

    def copy_page(self, src: int) -> int:
        """Allocate a private copy of ``src`` (the copy-on-write split).

        The caller keeps its reference to ``src`` and must ``decref`` it
        once the copy has replaced it in the caller's block table.
        """
        self._check_allocated(src)
        dst = self.alloc()
        # Raw-byte copy: quantised pages copy stored bytes + scales with no
        # decode/encode round-trip, so the split is loss-free and sharers
        # keep dequantising identical rows.
        self._keys[dst] = self._keys[src]
        self._values[dst] = self._values[src]
        if self._key_scales is not None:
            self._key_scales[dst] = self._key_scales[src]
            self._value_scales[dst] = self._value_scales[src]
            if self._fp_flags[src]:
                self._fp_flags[dst] = True
                self._fp_keys[dst] = self._fp_keys[src].copy()
                self._fp_values[dst] = self._fp_values[src].copy()
        self.stats.cow_splits += 1
        return dst

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def write_rows(
        self, page: int, offset: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Store ``n`` consecutive K/V rows ``[n, h, d]`` at ``(page, offset)``.

        This is the quantise-on-write seam: the float codec assigns rows
        into the arena exactly as the pre-codec pool did (same cast
        semantics, bit-identical), quantised codecs encode the rows and
        store bytes + per-row scales, and pages pinned full precision by
        the mixed-precision policy write into their overlay instead.
        """
        self._check_allocated(page)
        n = keys.shape[0]
        stop = offset + n
        if self.codec.is_float:
            self._keys[page, offset:stop] = keys
            self._values[page, offset:stop] = values
            return
        if self._fp_flags[page]:
            self._fp_keys[page][offset:stop] = keys
            self._fp_values[page][offset:stop] = values
            return
        stored_k, scales_k = self.codec.encode(keys)
        stored_v, scales_v = self.codec.encode(values)
        self._keys[page, offset:stop] = stored_k
        self._key_scales[page, offset:stop] = scales_k
        self._values[page, offset:stop] = stored_v
        self._value_scales[page, offset:stop] = scales_v

    def page_keys(self, page: int) -> np.ndarray:
        """Key rows of one allocated page, ``[page_size, h, d]``.

        Under the float codec (and for fp-overlay pages) this is the
        writable arena view it always was; for quantised pages it is a
        read-only *dequantised snapshot* — writes must go through
        :meth:`write_rows`.
        """
        self._check_allocated(page)
        return self._page_rows(page, self._keys, self._key_scales, self._fp_keys)

    def page_values(self, page: int) -> np.ndarray:
        self._check_allocated(page)
        return self._page_rows(page, self._values, self._value_scales, self._fp_values)

    def _page_rows(self, page, stored, scales, overlay) -> np.ndarray:
        if self.codec.is_float:
            return stored[page]
        if self._fp_flags[page]:
            return overlay[page]
        out = self.codec.decode(
            stored[page], scales[page], self.head_dim, self.dtype
        )
        out.setflags(write=False)
        return out

    def gather_keys(self, pages: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Gather key rows by parallel (page, offset) index arrays.

        Returns rows in the pool's *compute* dtype regardless of codec:
        one fancy-indexed arena read plus (for quantised codecs) one
        vectorised dequantisation over the whole gather — consumers never
        see storage bytes.
        """
        self.stats.gathers += 1
        return self._gather(
            pages, offsets, self._keys, self._key_scales, self._fp_keys
        )

    def gather_values(self, pages: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        self.stats.gathers += 1
        return self._gather(
            pages, offsets, self._values, self._value_scales, self._fp_values
        )

    def _gather(self, pages, offsets, stored, scales, overlay) -> np.ndarray:
        if self.codec.is_float:
            return stored[pages, offsets]
        out = self.codec.decode(
            stored[pages, offsets],
            scales[pages, offsets],
            self.head_dim,
            self.dtype,
        )
        if overlay:
            # Patch rows living on full-precision overlay pages.  fp pages
            # are a small fraction by design, so the per-row fixup loop
            # stays off the common path.
            flat_pages = np.asarray(pages).reshape(-1)
            mask = self._fp_flags[flat_pages]
            if mask.any():
                flat_offsets = np.asarray(offsets).reshape(-1)
                flat_out = out.reshape(-1, self.num_heads, self.head_dim)
                for i in np.nonzero(mask)[0]:
                    flat_out[i] = overlay[int(flat_pages[i])][int(flat_offsets[i])]
        return out

    # ------------------------------------------------------------------
    # Mixed precision (full-precision page overlay)
    # ------------------------------------------------------------------
    def mark_page_fp(self, page: int) -> None:
        """Pin an allocated page full precision (idempotent).

        The page's current quantised content is decoded into the overlay
        (fresh pages decode to zeros), and every subsequent write/read of
        the page uses the overlay at the compute dtype.
        """
        self._check_allocated(page)
        if self.codec.is_float or self._fp_flags[page]:
            return
        self._fp_keys[page] = self.codec.decode(
            self._keys[page], self._key_scales[page], self.head_dim, self.dtype
        ).copy()
        self._fp_values[page] = self.codec.decode(
            self._values[page], self._value_scales[page], self.head_dim, self.dtype
        ).copy()
        self._fp_flags[page] = True
        self.stats.fp_promotions += 1

    def demote_page_fp(self, page: int) -> None:
        """Quantise a full-precision page into the arena (idempotent).

        Called when a page falls out of the mixed-precision recent window:
        the overlay rows are encoded once and the overlay is dropped.
        """
        self._check_page(page)
        if self._fp_flags is None or not self._fp_flags[page]:
            return
        keys = self._fp_keys.pop(page)
        values = self._fp_values.pop(page)
        self._fp_flags[page] = False
        stored_k, scales_k = self.codec.encode(keys)
        stored_v, scales_v = self.codec.encode(values)
        self._keys[page] = stored_k
        self._key_scales[page] = scales_k
        self._values[page] = stored_v
        self._value_scales[page] = scales_v
        self.stats.fp_demotions += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old = self.total_pages
        new = max(4, old * 2)
        packed = self.codec.packed_dim(self.head_dim)
        shape = (new, self.page_size, self.num_heads, packed)
        keys = self.allocator.zeros(shape, self.codec.storage_dtype)
        values = self.allocator.zeros(shape, self.codec.storage_dtype)
        if old:
            keys[:old] = self._keys
            values[:old] = self._values
        self.allocator.free(self._keys)
        self.allocator.free(self._values)
        self._keys = keys
        self._values = values
        if self._key_scales is not None:
            scale_shape = (new, self.page_size, self.num_heads)
            key_scales = self.allocator.zeros(scale_shape, self.codec.scale_dtype)
            value_scales = self.allocator.zeros(scale_shape, self.codec.scale_dtype)
            fp_flags = np.zeros(new, dtype=bool)
            if old:
                key_scales[:old] = self._key_scales
                value_scales[:old] = self._value_scales
                fp_flags[:old] = self._fp_flags
            self.allocator.free(self._key_scales)
            self.allocator.free(self._value_scales)
            self._key_scales = key_scales
            self._value_scales = value_scales
            self._fp_flags = fp_flags
        self._refcounts.extend([0] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.total_pages:
            raise IndexError(f"page {page} out of range for pool of {self.total_pages}")

    def _check_allocated(self, page: int) -> None:
        self._check_page(page)
        if self._refcounts[page] <= 0:
            raise ValueError(f"page {page} is not allocated")


@dataclass(frozen=True)
class SharedKVPages:
    """A refcounted run of pool pages holding tokens ``0..length-1``.

    Token ``i`` lives at ``(page_ids[i // page_size], i % page_size)``.
    The handle itself carries no reference — holders manage refcounts via
    :meth:`incref` / :meth:`decref` (the prefix cache holds one reference
    per entry; every adopting block table holds its own).
    """

    pool: PagedKVPool
    page_ids: Tuple[int, ...]
    length: int

    def __post_init__(self) -> None:
        needed = math.ceil(self.length / self.pool.page_size)
        if len(self.page_ids) < needed:
            raise ValueError(
                f"{len(self.page_ids)} pages cannot cover {self.length} tokens"
            )

    def incref(self) -> None:
        for page in self.page_ids:
            self.pool.incref(page)

    def decref(self) -> None:
        self.pool.decref_many(self.page_ids)

    def prefix(self, length: int) -> "SharedKVPages":
        """The handle covering only the first ``length`` tokens."""
        if not 0 < length <= self.length:
            raise ValueError(f"length {length} outside (0, {self.length}]")
        pages = math.ceil(length / self.pool.page_size)
        return SharedKVPages(self.pool, self.page_ids[:pages], length)

    @property
    def full_pages(self) -> int:
        """Pages entirely covered by the run (never CoW-split by adopters)."""
        return self.length // self.pool.page_size

    def materialize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(keys [length, h, d], values)`` copies of the run."""
        ps = self.pool.page_size
        idx = np.arange(self.length, dtype=np.int64)
        pages = np.asarray(self.page_ids, dtype=np.int64)[idx // ps]
        offsets = idx % ps
        return (
            self.pool.gather_keys(pages, offsets),
            self.pool.gather_values(pages, offsets),
        )


class BlockTable:
    """Per-sequence mapping of logical cache slots onto pool pages.

    Slot ``s`` lives in block ``s // page_size`` at offset
    ``s % page_size``.  Blocks allocate lazily on first write; a write into
    a *shared* block (refcount above one — e.g. an adopted prefix page)
    first splits it via :meth:`PagedKVPool.copy_page`, which is the
    copy-on-write step that keeps sharers isolated.
    """

    _MISSING = -1

    def __init__(self, pool: PagedKVPool) -> None:
        self.pool = pool
        self._pages: List[int] = []
        # Cached ndarray mirror of ``_pages`` for the gather hot path
        # (rebuilt lazily after block-map mutations).
        self._pages_array: Optional[np.ndarray] = None
        # Mixed-precision bookkeeping: highest block ever allocated by this
        # table (the write frontier) and the demotion-scan watermark —
        # blocks below it have already been pushed out of the fp recent
        # window.  Both are per-sequence, so promotion/demotion points are
        # deterministic regardless of batch composition.
        self._fp_frontier = -1
        self._fp_demote_from = 0

    # ------------------------------------------------------------------
    @property
    def page_ids(self) -> Tuple[int, ...]:
        return tuple(p for p in self._pages if p != self._MISSING)

    def pages_held(self) -> int:
        return sum(1 for p in self._pages if p != self._MISSING)

    def resident_bytes(self) -> int:
        """Actual storage cost of the held pages in the pool's codec.

        Counts quantised arena bytes (including scale metadata) plus the
        full-precision overlay of any page the mixed-precision policy is
        pinning — *not* the compute-dtype size the rows dequantise to.
        """
        return sum(
            self.pool.page_bytes_of(p) for p in self._pages if p != self._MISSING
        )

    def shared_page_count(self) -> int:
        """Held pages whose refcount is above one (CoW-split candidates)."""
        return sum(
            1
            for p in self._pages
            if p != self._MISSING and self.pool.is_shared(p)
        )

    def block_is_shared(self, slot: int) -> bool:
        """Whether ``slot``'s block is allocated *and* currently shared."""
        block = slot // self.pool.page_size
        if block >= len(self._pages) or self._pages[block] == self._MISSING:
            return False
        return self.pool.is_shared(self._pages[block])

    def page_run(self, count: int) -> Tuple[int, ...]:
        """The first ``count`` allocated pages of this table, in block order.

        Raises if the run has holes — a page run with gaps cannot back a
        contiguous :class:`SharedKVPages`.
        """
        if count > len(self._pages):
            raise RuntimeError(
                f"table holds {len(self._pages)} blocks, {count} requested"
            )
        run = tuple(self._pages[:count])
        if any(page == self._MISSING for page in run):
            raise RuntimeError("cannot share a page run with holes")
        return run

    def would_allocate(self, slot: int) -> bool:
        """Would a write to ``slot`` need a page from the pool?

        True when the slot's block is unallocated *or* shared (a write
        would trigger a CoW split, which allocates).
        """
        block = slot // self.pool.page_size
        if block >= len(self._pages) or self._pages[block] == self._MISSING:
            return True
        return self.pool.is_shared(self._pages[block])

    def any_shared(self) -> bool:
        return any(
            p != self._MISSING and self.pool.is_shared(p) for p in self._pages
        )

    # ------------------------------------------------------------------
    def adopt(self, shared: SharedKVPages) -> None:
        """Install a shared page run as this table's first blocks (zero-copy).

        The table must be empty; the adopted pages are incref'd and cover
        slots ``0..shared.length-1``.  Later writes into the final partial
        page CoW-split it automatically.
        """
        if self._pages:
            raise RuntimeError("adopt requires an empty block table")
        if shared.pool is not self.pool:
            raise ValueError("cannot adopt pages from a different pool")
        shared.incref()
        self._pages = list(shared.page_ids)
        self._pages_array = None
        # Adopted blocks are pre-existing shared storage: the fp frontier
        # starts past them so the recent window tracks this sequence's own
        # appends (shared pages are never demoted regardless).
        self._fp_frontier = len(self._pages) - 1
        self.pool.stats.prefix_pages_adopted += len(shared.page_ids)

    def write(self, slot: int, key: np.ndarray, value: np.ndarray) -> None:
        """Write one K/V row, allocating / CoW-splitting as needed."""
        page, offset = self._writable(slot)
        self.pool.write_rows(
            page, offset, np.asarray(key)[None], np.asarray(value)[None]
        )

    def write_span(
        self, start_slot: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write ``n`` consecutive rows starting at ``start_slot``.

        Vectorised per touched page — the prefill bulk-load path.  Under a
        quantised codec the per-(row, head) scales make encoding a pure
        per-row function, so a span write stores bit-identical bytes to
        the same rows written one at a time.
        """
        n = keys.shape[0]
        ps = self.pool.page_size
        written = 0
        while written < n:
            slot = start_slot + written
            page, offset = self._writable(slot)
            take = min(ps - offset, n - written)
            self.pool.write_rows(
                page,
                offset,
                keys[written : written + take],
                values[written : written + take],
            )
            written += take

    def gather_keys(self, slots: np.ndarray) -> np.ndarray:
        pages, offsets = self.locate(slots)
        return self.pool.gather_keys(pages, offsets)

    def gather_values(self, slots: np.ndarray) -> np.ndarray:
        pages, offsets = self.locate(slots)
        return self.pool.gather_values(pages, offsets)

    def gather(self, slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pages, offsets = self.locate(slots)
        return (
            self.pool.gather_keys(pages, offsets),
            self.pool.gather_values(pages, offsets),
        )

    def release(self) -> None:
        """Drop every page reference held by this table (idempotent)."""
        pages, self._pages = self._pages, []
        self._pages_array = None
        self._fp_frontier = -1
        self._fp_demote_from = 0
        self.pool.decref_many(
            page for page in pages if page != self._MISSING
        )

    def trim_blocks(self, keep_blocks: int) -> int:
        """Drop every block past the first ``keep_blocks``; return pages freed.

        The speculative-rollback primitive: a store that appended draft
        rows into fresh tail blocks truncates them here, decref'ing the
        backing pages (a page another table still references survives —
        freeing is the pool's refcount's job, not ours).  Unallocated
        (hole) blocks trim silently.  The mixed-precision frontier is
        clamped back so a later re-append re-runs promotion for the
        re-grown blocks; note demotions of *earlier* pages triggered by
        the trimmed appends are not undone — callers that need exact
        mixed-precision state must not speculate (the engine gates on
        this).
        """
        if keep_blocks < 0:
            raise ValueError("keep_blocks must be >= 0")
        if keep_blocks >= len(self._pages):
            return 0
        dropped = self._pages[keep_blocks:]
        del self._pages[keep_blocks:]
        self._pages_array = None
        self._fp_frontier = min(self._fp_frontier, keep_blocks - 1)
        freed = 0
        for page in dropped:
            if page != self._MISSING:
                freed += 1 if self.pool.refcount(page) == 1 else 0
                self.pool.decref(page)
        return freed

    def detach(self) -> Tuple[int, ...]:
        """Empty the table and hand its page references to the caller.

        No refcounts change: ownership of one reference per returned page
        transfers to the caller (e.g. to wrap in a
        :class:`SharedKVPages`).  Raises if any block is unallocated —
        a page run with holes cannot be addressed contiguously.
        """
        if any(page == self._MISSING for page in self._pages):
            raise RuntimeError("cannot detach a block table with holes")
        pages, self._pages = tuple(self._pages), []
        self._pages_array = None
        self._fp_frontier = -1
        self._fp_demote_from = 0
        return pages

    # ------------------------------------------------------------------
    def _writable(self, slot: int) -> Tuple[int, int]:
        if slot < 0:
            raise IndexError("slot must be >= 0")
        block, offset = divmod(slot, self.pool.page_size)
        while len(self._pages) <= block:
            self._pages.append(self._MISSING)
            self._pages_array = None
        page = self._pages[block]
        if page == self._MISSING:
            page = self.pool.alloc()
            self._pages[block] = page
            self._pages_array = None
            self._apply_mixed_precision(block, page)
        elif self.pool.is_shared(page):
            split = self.pool.copy_page(page)
            self.pool.decref(page)
            self._pages[block] = split
            page = split
            self._pages_array = None
        return page, offset

    def _apply_mixed_precision(self, block: int, page: int) -> None:
        """Promote a freshly allocated block / demote ones leaving the window.

        Sink blocks (``block < sink_pages``) are pinned full precision
        forever.  With a recent window every fresh block starts full
        precision (it *is* the frontier) and blocks that fall out of the
        highest ``recent_pages`` are demoted — except shared pages, whose
        sharers must keep reading identical rows.
        """
        mp = self.pool.mixed_precision
        if mp is None or not mp.enabled:
            return
        if block < mp.sink_pages or mp.recent_pages > 0:
            self.pool.mark_page_fp(page)
        if mp.recent_pages > 0 and block > self._fp_frontier:
            self._fp_frontier = block
            limit = block - mp.recent_pages  # highest block now out of window
            start = max(mp.sink_pages, self._fp_demote_from)
            for b in range(start, limit + 1):
                if b >= len(self._pages):
                    break
                p = self._pages[b]
                if p != self._MISSING and not self.pool.is_shared(p):
                    self.pool.demote_page_fp(p)
            self._fp_demote_from = max(self._fp_demote_from, limit + 1)

    def locate(self, slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve logical slots into parallel ``(pages, offsets)`` arrays.

        The pool-level address form consumed by
        :meth:`PagedKVPool.gather_keys` / :meth:`~PagedKVPool.gather_values`
        — and by :func:`gather_padded`, which concatenates the addresses of
        many tables sharing one pool into a single arena gather.
        """
        slots = np.asarray(slots, dtype=np.int64)
        blocks = slots // self.pool.page_size
        offsets = slots - blocks * self.pool.page_size
        table = self._pages_array
        if table is None:
            table = np.asarray(self._pages, dtype=np.int64)
            self._pages_array = table
        if slots.size and (blocks.max(initial=-1) >= table.size):
            raise IndexError("gather of a slot beyond the block table")
        pages = table[blocks] if table.size else blocks.copy()
        if slots.size and (pages == self._MISSING).any():
            raise ValueError("gather of a slot whose page was never written")
        return pages, offsets


def gather_padded(
    tables: Sequence[BlockTable],
    slot_lists: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched multi-sequence gather into padded ``[S, T_max, h, d]`` tensors.

    ``tables[s]`` is sequence ``s``'s block table and ``slot_lists[s]`` the
    slots to read, in the order the sequence's policy wants them.  Members
    are bucketed by backing pool; each pool is read with **one** fancy-
    indexed arena gather over 2-D padded ``(page, offset)`` index arrays,
    which lands rows *directly* in the padded layout — no intermediate
    flat copy, and on the serving engine's shared per-layer arena a whole
    policy group costs a single gather instead of one per sequence.
    Standalone policies with private pools degrade gracefully to one
    gather each.

    Returns ``(keys [S, T, h, d], values [S, T, h, d], lengths [S])`` in
    the pools' *compute* dtype — quantised arenas dequantise inside the
    per-pool gather (one vectorised decode over the whole padded block),
    so group-decode consumers are codec-agnostic.  Rows at or beyond
    ``lengths[s]`` hold
    **arbitrary pool data** (the padding indices alias row 0 of an
    allocated page): consumers must mask the tail — every batched group
    consumer scores padding ``-inf`` (softmax weight exactly ``0.0``) or
    slices ``[:lengths[s]]``, so padded garbage can never reach an output.
    With :func:`set_poison_padding` (or ``REPRO_POISON_PADDING=1``) the
    padding tail is overwritten with NaN so an unmasked read fails loudly.
    """
    if len(tables) != len(slot_lists):
        raise ValueError("tables and slot_lists must agree on batch size")
    count = len(tables)
    if count == 0:
        raise ValueError("gather_padded requires at least one sequence")
    slot_arrays = [np.asarray(s, dtype=np.int64) for s in slot_lists]
    lengths = np.asarray([s.size for s in slot_arrays], dtype=np.int64)
    t_max = int(lengths.max())
    pool0 = tables[0].pool
    by_pool: Dict[int, Tuple[PagedKVPool, list]] = {}
    for row, (table, slots) in enumerate(zip(tables, slot_arrays)):
        if table.pool.num_heads != pool0.num_heads or (
            table.pool.head_dim != pool0.head_dim
        ):
            raise ValueError("all pools must share the K/V row geometry")
        if table.pool.dtype != pool0.dtype:
            # A silent cast here would make the padded tensor diverge from
            # what each member's own gather returns.  (Storage codecs may
            # differ — gathers already return the compute dtype.)
            raise ValueError("all pools must share the compute dtype")
        by_pool.setdefault(id(table.pool), (table.pool, []))[1].append(
            (row, table, slots)
        )

    keys: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None
    for pool, members in by_pool.values():
        member_count = len(members)
        pages = np.empty((member_count, t_max), dtype=np.int64)
        offsets = np.empty((member_count, t_max), dtype=np.int64)
        for i, (_row, table, slots) in enumerate(members):
            size = slots.size
            member_pages, member_offsets = table.locate(slots)
            pages[i, :size] = member_pages
            offsets[i, :size] = member_offsets
            if size < t_max:
                # Alias the member's own first page for the padding tail:
                # a guaranteed-allocated address whose (masked) data is
                # never read.
                pages[i, size:] = member_pages[0] if size else 0
                offsets[i, size:] = 0
        gathered_k = pool.gather_keys(pages, offsets)  # [m, T, h, d]
        gathered_v = pool.gather_values(pages, offsets)
        if _POISON_PADDING:
            for i, (_row, _table, slots) in enumerate(members):
                if slots.size < t_max:
                    gathered_k[i, slots.size :] = np.nan
                    gathered_v[i, slots.size :] = np.nan
        if len(by_pool) == 1:
            # All sequences share one arena (the serving layout): the
            # gather result *is* the padded tensor — zero extra copies.
            return gathered_k, gathered_v, lengths
        if keys is None:
            shape = (count, t_max, pool0.num_heads, pool0.head_dim)
            keys = np.empty(shape, dtype=pool0.dtype)
            values = np.empty(shape, dtype=pool0.dtype)
        rows = [row for row, _table, _slots in members]
        keys[rows] = gathered_k
        values[rows] = gathered_v
    return keys, values, lengths


class PagedKVStore:
    """Growable position-keyed K/V store over a paged pool.

    This is the storage substrate of the append-mostly policies (full
    cache, StreamingLLM, H2O, SnapKV, Quest): K/V rows are keyed by logical
    token position, slots are recycled LIFO after :meth:`drop`, and reads
    gather rows in whatever order the policy asks for, so each policy keeps
    its own ordering semantics bit-for-bit.

    Without an explicit ``pool`` the store owns a private growable pool —
    behaviourally identical to the dense per-policy arrays it replaces.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        pool: Optional[PagedKVPool] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        dtype: np.dtype = np.float64,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
    ) -> None:
        if pool is None:
            pool = PagedKVPool(
                page_size,
                num_heads,
                head_dim,
                dtype=dtype,
                codec=codec,
                mixed_precision=mixed_precision,
            )
        elif pool.num_heads != num_heads or pool.head_dim != head_dim:
            raise ValueError(
                "pool geometry "
                f"({pool.num_heads}, {pool.head_dim}) does not match store "
                f"({num_heads}, {head_dim})"
            )
        self.pool = pool
        self._table = BlockTable(pool)
        self._slot_of: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._high_water = 0
        self._ever_freed = False

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, position: int) -> bool:
        return int(position) in self._slot_of

    def positions(self) -> List[int]:
        """Stored positions in insertion order."""
        return list(self._slot_of)

    @property
    def block_table(self) -> BlockTable:
        """The slot -> pool-page mapping (for batched group gathers)."""
        return self._table

    @property
    def insertion_slots_are_sequential(self) -> bool:
        """True while no slot has ever been recycled.

        Slots are assigned sequentially, so until the first :meth:`drop`
        the ``i``-th inserted position lives in slot ``i`` — an
        insertion-order gather can address slots ``0..len-1`` directly,
        skipping the per-position map walk (the group-decode hot path of
        the append-only policies).
        """
        return not self._ever_freed

    def slots_of(self, positions: Sequence[int]) -> np.ndarray:
        """Physical slots of ``positions``, in exactly the order given.

        Paired with :attr:`block_table`, this lets
        :func:`gather_padded` read many sequences' rows with one pool
        gather instead of one :meth:`gather` per sequence.
        """
        return np.fromiter(
            map(self._slot_of.__getitem__, map(int, positions)),
            dtype=np.int64,
            count=len(positions),
        )

    def pages_held(self) -> int:
        return self._table.pages_held()

    def memory_bytes(self) -> int:
        return self.pages_held() * self.pool.page_bytes

    def resident_bytes(self) -> int:
        """Codec-true storage cost of the held pages (incl. fp overlays)."""
        return self._table.resident_bytes()

    # ------------------------------------------------------------------
    def put(self, position: int, key: np.ndarray, value: np.ndarray) -> None:
        """Insert or overwrite the K/V row of ``position``."""
        position = int(position)
        slot = self._slot_of.get(position)
        if slot is None:
            slot = self._free_slots.pop() if self._free_slots else self._next_slot()
            self._slot_of[position] = slot
        self._table.write(slot, key, value)

    def bulk_append(
        self, positions: Sequence[int], keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Insert many *new* positions at once (the prefill bulk load).

        Requires a store with no recycled free slots so the rows land in
        consecutive slots and can be written one page-span at a time.
        """
        if self._free_slots:
            raise RuntimeError("bulk_append requires a store without free slots")
        if len(positions) != keys.shape[0] or keys.shape != values.shape:
            raise ValueError("positions, keys and values must agree on length")
        start = self._high_water
        for i, position in enumerate(positions):
            position = int(position)
            if position in self._slot_of:
                raise ValueError(f"position {position} already stored")
            self._slot_of[position] = start + i
        self._high_water = start + len(positions)
        self._table.write_span(start, keys, values)

    def drop(self, position: int) -> None:
        """Forget ``position`` and recycle its slot."""
        slot = self._slot_of.pop(int(position))
        self._free_slots.append(slot)
        self._ever_freed = True

    def rollback_append(self, positions: Sequence[int]) -> int:
        """Forget recently appended ``positions``; return pool pages freed.

        The speculative-decode rollback: draft rows were appended with
        :meth:`put` / :meth:`bulk_append` into the slots at the top of the
        store, and a rejected draft must leave the store *exactly* as if
        those rows were never written.  When the positions occupy the
        contiguous slot tail below the high-water mark (the invariant an
        append-only store upholds), the tail is truncated in place — the
        high-water mark rewinds, now-empty trailing blocks are dropped
        (decref'ing their pages, which frees fresh speculative pages and
        releases CoW references alike), and crucially
        :attr:`insertion_slots_are_sequential` is preserved, unlike
        per-position :meth:`drop` which recycles slots through the free
        list forever.  Positions that do not form the slot tail (a store
        that has evicted mid-speculation) fall back to :meth:`drop` each —
        correct, but no pages are reclaimed until release.
        """
        if not positions:
            return 0
        slots = sorted(self._slot_of[int(p)] for p in positions)
        n = len(slots)
        contiguous_tail = (
            not self._free_slots
            and slots[0] == self._high_water - n
            and slots[-1] == self._high_water - 1
            and len(set(slots)) == n
        )
        if not contiguous_tail:
            for position in positions:
                self.drop(position)
            return 0
        for position in positions:
            del self._slot_of[int(position)]
        self._high_water -= n
        keep_blocks = -(-self._high_water // self.pool.page_size)
        return self._table.trim_blocks(keep_blocks)

    def gather(
        self, positions: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys [n, h, d], values)`` in exactly the order given."""
        return self._table.gather(self.slots_of(positions))

    def adopt_prefix(self, shared: SharedKVPages) -> None:
        """Zero-copy adoption of a shared prefix covering positions 0..p-1.

        The store must be empty; position ``i`` maps to slot ``i`` for the
        adopted run, so later appends continue seamlessly at slot ``p`` —
        the first write into the final partial page CoW-splits it.
        """
        if self._slot_of or self._free_slots or self._high_water:
            raise RuntimeError("adopt_prefix requires an empty store")
        self._table.adopt(shared)
        self._slot_of = {pos: pos for pos in range(shared.length)}
        self._high_water = shared.length

    def can_adopt(self, shared: Optional[SharedKVPages]) -> bool:
        """Whether :meth:`adopt_prefix` would be a zero-copy pool share."""
        return (
            shared is not None
            and shared.pool is self.pool
            and not self._slot_of
            and not self._free_slots
            and not self._high_water
        )

    def append_page_demand(self) -> int:
        """Pages the next :meth:`put` of a new position could allocate."""
        slot = self._free_slots[-1] if self._free_slots else self._high_water
        return 1 if self._table.would_allocate(slot) else 0

    def shared_page_count(self) -> int:
        """Held pages currently shared with another table or cache entry."""
        return self._table.shared_page_count()

    def append_cow_risk(self) -> int:
        """1 when the next new-position write lands in a *shared* block.

        Append-only stores (full cache, Quest) never rewrite old rows, so
        the only copy-on-write a future append can trigger is the split of
        the partial block the next write goes into; fully covered shared
        prefix pages below it are never touched.  Admission control uses
        this instead of counting every shared page as a potential split.
        """
        slot = self._free_slots[-1] if self._free_slots else self._high_water
        return 1 if self._table.block_is_shared(slot) else 0

    def share_prefix(self, length: int) -> Optional[SharedKVPages]:
        """Refcounted handle to the pool pages holding positions ``0..length-1``.

        Returns ``None`` unless those positions are identity-mapped onto the
        table's first slots (the layout produced by a from-empty prefill or
        prefix adoption) — only then do the first blocks form a contiguous
        page run another sequence could adopt.  On success the returned
        handle *owns one reference per page* (this store keeps its own), so
        the run survives this store's release; the caller must eventually
        ``decref()`` it.
        """
        if length < 1 or length > self._high_water:
            return None
        for pos in range(length):
            if self._slot_of.get(pos) != pos:
                return None
        blocks = math.ceil(length / self.pool.page_size)
        try:
            pages = self._table.page_run(blocks)
        except RuntimeError:
            return None
        shared = SharedKVPages(self.pool, pages, length)
        shared.incref()
        return shared

    def clear(self) -> None:
        """Release every page and forget all positions (idempotent)."""
        self._table.release()
        self._slot_of = {}
        self._free_slots = []
        self._high_water = 0
        self._ever_freed = False

    release = clear

    # ------------------------------------------------------------------
    def _next_slot(self) -> int:
        slot = self._high_water
        self._high_water += 1
        return slot


class KVPoolGroup:
    """One :class:`PagedKVPool` per transformer layer.

    The serving engine owns a group sized from a byte budget and hands
    layer ``i``'s pool to every sequence's layer-``i`` policy, so all
    sequences (and the prefix cache) share the same fixed arena per layer.
    """

    def __init__(
        self,
        num_layers: int,
        page_size: int,
        num_heads: int,
        head_dim: int,
        num_pages: Optional[int] = None,
        dtype: np.dtype = np.float64,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
        allocator: Optional[ArenaAllocator] = None,
    ) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        codec_obj = resolve_codec(codec, np.dtype(dtype))
        self.pools = [
            PagedKVPool(
                page_size,
                num_heads,
                head_dim,
                num_pages=num_pages,
                dtype=dtype,
                codec=codec_obj,
                mixed_precision=mixed_precision,
                allocator=allocator,
            )
            for _ in range(num_layers)
        ]

    @classmethod
    def from_byte_budget(
        cls,
        num_layers: int,
        page_size: int,
        num_heads: int,
        head_dim: int,
        total_bytes: int,
        dtype: np.dtype = np.float64,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
        allocator: Optional[ArenaAllocator] = None,
    ) -> "KVPoolGroup":
        """Fixed per-layer pools splitting ``total_bytes`` evenly.

        Page cost comes from the storage codec, so at int8/int4 the same
        budget yields ~4x/8x the pages of the fp64 default.
        """
        codec_obj = resolve_codec(codec, np.dtype(dtype))
        page_bytes = page_size * codec_obj.kv_row_bytes(num_heads, head_dim)
        per_layer = int(total_bytes) // num_layers
        num_pages = max(1, per_layer // page_bytes)
        return cls(
            num_layers, page_size, num_heads, head_dim,
            num_pages=num_pages, dtype=dtype,
            codec=codec_obj, mixed_precision=mixed_precision,
            allocator=allocator,
        )

    @property
    def num_layers(self) -> int:
        return len(self.pools)

    @property
    def page_size(self) -> int:
        return self.pools[0].page_size

    def layer(self, index: int) -> PagedKVPool:
        return self.pools[index]

    @property
    def codec(self):
        """The (uniform) storage codec of the group's pools."""
        return self.pools[0].codec

    def stats(self) -> Dict[str, object]:
        """Aggregate telemetry across all layers."""
        out: Dict[str, object] = {
            "pages_total": 0,
            "pages_free": 0,
            "pages_in_use": 0,
            "peak_pages_in_use": 0,
            "bytes_total": 0,
            "bytes_in_use": 0,
            "page_allocs": 0,
            "page_frees": 0,
            "cow_splits": 0,
            "prefix_pages_adopted": 0,
            "gathers": 0,
            "fp_pages_in_use": 0,
            "fp_promotions": 0,
            "fp_demotions": 0,
        }
        for pool in self.pools:
            out["pages_total"] += pool.total_pages
            out["pages_free"] += pool.free_pages
            out["pages_in_use"] += pool.pages_in_use
            out["peak_pages_in_use"] += pool.stats.peak_pages_in_use
            out["bytes_total"] += pool.bytes_total
            out["bytes_in_use"] += pool.bytes_in_use
            out["page_allocs"] += pool.stats.page_allocs
            out["page_frees"] += pool.stats.page_frees
            out["cow_splits"] += pool.stats.cow_splits
            out["prefix_pages_adopted"] += pool.stats.prefix_pages_adopted
            out["gathers"] += pool.stats.gathers
            out["fp_pages_in_use"] += pool.fp_pages_in_use
            out["fp_promotions"] += pool.stats.fp_promotions
            out["fp_demotions"] += pool.stats.fp_demotions
        pool0 = self.pools[0]
        out["codec"] = pool0.codec.name
        # Effective storage cost per cached token, scale metadata included.
        out["bytes_per_token"] = pool0.page_bytes / pool0.page_size
        in_use = out["pages_in_use"]
        out["fp_page_fraction"] = (
            out["fp_pages_in_use"] / in_use if in_use else 0.0
        )
        return out


__all__ = [
    "DEFAULT_PAGE_SIZE",
    "ArenaAllocator",
    "AttachedArena",
    "BlockTable",
    "CodecSpec",
    "KVPoolGroup",
    "MixedPrecisionConfig",
    "PagedKVPool",
    "PagedKVStore",
    "PoolExhaustedError",
    "PoolStats",
    "SharedArenaAllocator",
    "SharedKVPages",
    "arena_allocator",
    "current_arena_allocator",
    "gather_padded",
    "resolve_codec",
]
