"""Attention-score and sparse-attention math shared across the library.

The paper uses the raw dot-product similarity (Eq. 1, ``Attn(q, K) = q K^T``)
as the importance score for pruning, and the usual scaled softmax attention
for the exact computation of the dynamically selected top-k tokens.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax.

    Rows whose entries are all ``-inf`` (e.g. a fully-masked attention row)
    would produce ``0/0 -> NaN``; such rows return a uniform distribution
    instead, so masking bugs surface as wrong-but-finite probabilities
    rather than silent NaN propagation.
    """
    x = np.asarray(x, dtype=np.float64)
    row_max = np.max(x, axis=axis, keepdims=True)
    if np.isfinite(row_max).all():
        # Fast path (every row has at least one finite entry): identical
        # numerics to the classic shift-exp-normalise implementation.
        exp = np.exp(x - row_max)
        return exp / np.sum(exp, axis=axis, keepdims=True)
    # Guard fully-masked rows (all -inf): (-inf) - (-inf) = NaN otherwise.
    # Only those rows become uniform; NaN inputs still propagate as NaN so
    # genuine numerical bugs stay loud.
    fully_masked = np.isneginf(row_max)
    safe_max = np.where(fully_masked, 0.0, row_max)
    exp = np.exp(x - safe_max)
    total = np.sum(exp, axis=axis, keepdims=True)
    n = x.shape[axis] if x.ndim else 1
    uniform = 1.0 / max(n, 1)
    probs = exp / np.where(fully_masked, 1.0, total)
    return np.where(fully_masked, uniform, probs)


def attention_scores(
    query: np.ndarray,
    keys: np.ndarray,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Dot-product similarity between one query and a stack of keys.

    Parameters
    ----------
    query:
        Shape ``[d]`` or ``[h, d]``.
    keys:
        Shape ``[n, d]`` or ``[n, h, d]`` (matching the query's head axis).
    scale:
        Optional multiplicative scale (``1/sqrt(d)`` for softmax attention).
        The pruning hardware operates on the unscaled product, so the
        default is no scaling.

    Returns
    -------
    np.ndarray
        Shape ``[n]`` (single head) or ``[h, n]`` (multi-head).
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    if query.ndim == 1:
        if keys.ndim != 2:
            raise ValueError("keys must be [n, d] when query is [d]")
        scores = keys @ query
    elif query.ndim == 2:
        if keys.ndim != 3:
            raise ValueError("keys must be [n, h, d] when query is [h, d]")
        # [n, h, d] x [h, d] -> [h, n]
        scores = np.einsum("nhd,hd->hn", keys, query)
    else:
        raise ValueError("query must be 1-D or 2-D")
    if scale is not None:
        scores = scores * float(scale)
    return scores


def cosine_scores(query: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Cosine similarity between a query and a stack of keys.

    The paper refers to its dot-product score as a cosine similarity; the
    normalised version is provided for completeness and for ablations.
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    raw = attention_scores(query, keys)
    qnorm = np.linalg.norm(query, axis=-1)
    knorm = np.linalg.norm(keys, axis=-1)
    if query.ndim == 1:
        denom = np.maximum(qnorm * knorm, 1e-12)
        return raw / denom
    denom = np.maximum(qnorm[:, None] * knorm.T, 1e-12)
    return raw / denom


def attention_probabilities(
    query: np.ndarray,
    keys: np.ndarray,
    scale: Optional[float] = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Softmax attention probabilities for one query over cached keys.

    Raises
    ------
    ValueError
        If ``mask`` excludes every key of a row: there is no token to
        attend to, which is a caller bug that previously surfaced only as
        silent NaN propagation.
    """
    scores = attention_scores(query, keys, scale=scale)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not np.all(np.any(np.broadcast_to(mask, scores.shape), axis=-1)):
            raise ValueError(
                "attention mask excludes every key for at least one row; "
                "each query must be able to attend to at least one token"
            )
        scores = np.where(mask, scores, -np.inf)
    return softmax(scores, axis=-1)


def attention_output(
    query: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    scale: Optional[float] = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Single-query attention output ``softmax(qK^T) V``.

    Shapes follow :func:`attention_scores`; values must match keys.
    """
    probs = attention_probabilities(query, keys, scale=scale, mask=mask)
    values = np.asarray(values, dtype=np.float64)
    if query.ndim == 1:
        return probs @ values
    # probs: [h, n]; values: [n, h, d] -> [h, d]
    return np.einsum("hn,nhd->hd", probs, values)


def causal_prefix_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    prefix: int,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Batched causal attention where row ``i`` sees ``keys[: prefix+i+1]``.

    The speculative-verify primitive: ``queries`` is ``[k, h, d]`` (the
    draft chunk), ``keys``/``values`` are the ``prefix`` committed rows
    followed by the ``k`` staged draft rows, and row ``i`` must attend
    exactly the cache a serial decode step at its position would —
    ``prefix + i + 1`` rows.  Returns ``[k, h, d]``.

    Bit-identical to ``k`` independent :func:`attention_output` calls over
    the prefix slices, which is what makes it usable on the exactness-
    certified speculation path: the score and value einsums contract the
    same elements in the same order as their per-row counterparts, masked
    score entries contribute ``exp(-inf) == 0`` exactly, and the softmax
    denominators are reduced per row over the *exact* visible slice (a
    padded reduction would regroup numpy's pairwise summation tree and
    drift in the last ulp).
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if queries.ndim != 3 or keys.ndim != 3 or values.shape != keys.shape:
        raise ValueError(
            "queries must be [k, h, d] and keys/values matching [n, h, d]"
        )
    k = queries.shape[0]
    n = keys.shape[0]
    if prefix < 0 or prefix + k > n:
        raise ValueError("keys must cover prefix + k rows")
    scores = np.einsum("nhd,khd->khn", keys, queries)
    if scale is not None:
        scores *= float(scale)
    lengths = prefix + 1 + np.arange(k)
    hidden = np.arange(n)[None, :] >= lengths[:, None]  # [k, n]
    np.copyto(scores, -np.inf, where=hidden[:, None, :])
    row_max = np.maximum.reduce(scores, axis=-1, keepdims=True)
    scores -= row_max
    exp = np.exp(scores, out=scores)  # masked entries: exp(-inf) == 0
    denom = np.empty((k, queries.shape[1], 1), dtype=np.float64)
    for i in range(k):
        denom[i, :, 0] = np.add.reduce(exp[i, :, : int(lengths[i])], axis=-1)
    exp /= denom
    return np.einsum("khn,nhd->khd", exp, values)


def sparse_attention_output(
    query: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    selected: Sequence[int],
    scale: Optional[float] = None,
) -> np.ndarray:
    """Attention restricted to an explicit subset of key indices.

    This is the exact sparse attention the current-domain CIM mode performs
    over the top-k dynamically selected tokens.
    """
    selected = (
        selected.astype(np.int64, copy=False)
        if isinstance(selected, np.ndarray)
        else np.asarray(list(selected), dtype=np.int64)
    )
    if selected.size == 0:
        raise ValueError("selected index set must not be empty")
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    return attention_output(
        query, keys[selected], values[selected], scale=scale
    )


def full_vs_sparse_error(
    query: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    selected: Sequence[int],
    scale: Optional[float] = None,
) -> float:
    """Relative L2 error between full attention and sparse attention output."""
    full = attention_output(query, keys, values, scale=scale)
    sparse = sparse_attention_output(query, keys, values, selected, scale=scale)
    denom = max(float(np.linalg.norm(full)), 1e-12)
    return float(np.linalg.norm(full - sparse) / denom)


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, sorted by descending score.

    Ties are broken by the lower index (deterministic), matching the
    behavioural CAM model where an earlier row wins a simultaneous
    comparison.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("scores must be 1-D")
    n = scores.shape[0]
    if k <= 0:
        raise ValueError("k must be >= 1")
    k = min(k, n)
    # argsort on (-score, index) for deterministic tie-breaks.
    order = np.lexsort((np.arange(n), -scores))
    return order[:k]


def causal_mask(
    cached_positions: np.ndarray, query_position: int
) -> np.ndarray:
    """Boolean mask selecting cached tokens visible to ``query_position``."""
    cached_positions = np.asarray(cached_positions, dtype=np.int64)
    return cached_positions <= int(query_position)


def accumulate_scores(
    table: np.ndarray,
    scores: np.ndarray,
    decay: float = 1.0,
) -> np.ndarray:
    """Update an accumulated-score table with this step's scores.

    ``table`` and ``scores`` must be the same shape.  ``decay`` < 1 gives a
    recency-weighted accumulation (ablation); ``decay == 1`` is the paper's
    plain running sum.
    """
    table = np.asarray(table, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if table.shape != scores.shape:
        raise ValueError("table and scores must have identical shapes")
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    return table * decay + scores


def attention_flops(seq_len: int, head_dim: int, num_heads: int = 1) -> int:
    """Floating point operations for one decoding step of dense attention.

    Two GEMVs per head: ``q K^T`` and ``p V`` (2 * n * d multiply-adds each).
    """
    if seq_len < 0 or head_dim < 1 or num_heads < 1:
        raise ValueError("invalid attention dimensions")
    return 2 * 2 * seq_len * head_dim * num_heads


def selection_overlap(selected_a: Sequence[int], selected_b: Sequence[int]) -> float:
    """Jaccard overlap between two selected-index sets (selector fidelity)."""
    a = set(int(i) for i in selected_a)
    b = set(int(i) for i in selected_b)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def recall_at_k(approx_selected: Sequence[int], exact_selected: Sequence[int]) -> float:
    """Fraction of the exact top-k recovered by an approximate selector."""
    exact = set(int(i) for i in exact_selected)
    if not exact:
        return 1.0
    approx = set(int(i) for i in approx_selected)
    return len(approx & exact) / len(exact)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``[..., h*d]`` into ``[..., h, d]``."""
    x = np.asarray(x)
    if x.shape[-1] % num_heads != 0:
        raise ValueError("last dimension must be divisible by num_heads")
    head_dim = x.shape[-1] // num_heads
    return x.reshape(*x.shape[:-1], num_heads, head_dim)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`: ``[..., h, d]`` -> ``[..., h*d]``."""
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError("input must have at least 2 dimensions")
    return x.reshape(*x.shape[:-2], x.shape[-2] * x.shape[-1])


def head_mean_scores(scores: np.ndarray) -> np.ndarray:
    """Reduce per-head scores ``[h, n]`` to a single per-token score ``[n]``.

    The hardware stores one key row per token per head-group; the pruning
    decision in the paper is made on the head-aggregated score.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim == 1:
        return scores
    if scores.ndim != 2:
        raise ValueError("scores must be [n] or [h, n]")
    return scores.mean(axis=0)


Scores = np.ndarray
Selection = Tuple[np.ndarray, np.ndarray]

__all__ = [
    "softmax",
    "attention_scores",
    "cosine_scores",
    "attention_probabilities",
    "attention_output",
    "causal_prefix_attention",
    "sparse_attention_output",
    "full_vs_sparse_error",
    "top_k_indices",
    "causal_mask",
    "accumulate_scores",
    "attention_flops",
    "selection_overlap",
    "recall_at_k",
    "split_heads",
    "merge_heads",
    "head_mean_scores",
]
