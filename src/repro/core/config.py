"""Configuration objects for the UniCAIM pruning framework.

The paper's algorithm (Sec. III-A) is parameterised by:

* ``heavy_budget`` (``H``) -- number of "heavy" tokens retained after the
  one-shot static pruning at the end of the prefill stage.
* ``reserved_budget`` (``M``) -- number of cache slots reserved for tokens
  generated during decoding.  Once more than ``M`` tokens have been
  generated, every further step statically evicts the token with the lowest
  accumulated attention score so the cache never grows past ``H + M``.
* ``top_k`` -- number of keys dynamically selected at every decoding step
  for exact attention computation.

The circuit-level experiments in the paper (Sec. IV-A) use ``H = 512``,
``M = 64`` (576 total cache slots), hidden dimension 128 per head, and a
3-bit UniCAIM cell; those values are the defaults of
:func:`PruningConfig.paper_circuit_default`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class PruningConfig:
    """Parameters of the hybrid static-dynamic KV cache pruning algorithm.

    Attributes
    ----------
    heavy_budget:
        ``H`` -- tokens kept by the one-shot static pruning after prefill.
    reserved_budget:
        ``M`` -- cache slots reserved for newly generated tokens.
    top_k:
        Number of tokens dynamically selected each decoding step.  ``None``
        means "attend to every cached token" (dynamic pruning disabled).
    sink_tokens:
        Number of initial tokens that are always protected from static
        eviction.  The paper follows H2O/SnapKV-style accumulated-score
        eviction; keeping a small number of attention sinks mirrors the
        observation of StreamingLLM and stabilises the synthetic substrate.
    recent_protect:
        Number of most recently generated tokens protected from static
        eviction during decoding (the current token's neighbourhood).
    score_decay:
        Exponential decay applied to the accumulated-score table at every
        decoding step.  ``1.0`` reproduces the plain accumulation used in
        the paper; values slightly below one give a recency-weighted
        variant (exposed for the ablation benchmarks).
    use_softmax_scores:
        If true, accumulated scores are softmax-normalised attention
        probabilities (H2O-style); if false, raw dot-product similarities
        are accumulated (what the CAM/charge-domain hardware measures).
    """

    heavy_budget: int = 512
    reserved_budget: int = 64
    top_k: Optional[int] = 64
    sink_tokens: int = 4
    recent_protect: int = 8
    score_decay: float = 1.0
    use_softmax_scores: bool = True

    def __post_init__(self) -> None:
        if self.heavy_budget < 1:
            raise ValueError("heavy_budget must be >= 1")
        if self.reserved_budget < 1:
            raise ValueError("reserved_budget must be >= 1")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1 or None")
        if self.sink_tokens < 0:
            raise ValueError("sink_tokens must be >= 0")
        if self.recent_protect < 0:
            raise ValueError("recent_protect must be >= 0")
        if not 0.0 < self.score_decay <= 1.0:
            raise ValueError("score_decay must be in (0, 1]")

    @property
    def cache_capacity(self) -> int:
        """Total number of KV cache slots (``H + M``)."""
        return self.heavy_budget + self.reserved_budget

    def effective_top_k(self, cache_len: int) -> int:
        """Top-k clipped to the number of currently cached tokens."""
        if self.top_k is None:
            return cache_len
        return min(self.top_k, cache_len)

    def with_cache_ratio(self, prompt_len: int, ratio: float) -> "PruningConfig":
        """Derive a config whose total budget is ``ratio`` of ``prompt_len``.

        Used by the application-level evaluation (Fig. 13) where the x-axis
        is the fraction of the full KV cache that is retained.
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        total = max(2, int(round(prompt_len * ratio)))
        reserved = max(1, min(self.reserved_budget, total // 4))
        heavy = max(1, total - reserved)
        top_k = None if self.top_k is None else max(1, min(self.top_k, heavy))
        return replace(
            self,
            heavy_budget=heavy,
            reserved_budget=reserved,
            top_k=top_k,
        )

    @classmethod
    def paper_circuit_default(cls) -> "PruningConfig":
        """Configuration used in the paper's circuit-level evaluation."""
        return cls(heavy_budget=512, reserved_budget=64, top_k=64)

    @classmethod
    def dense(cls, capacity: int) -> "PruningConfig":
        """A configuration that never prunes (full-cache attention)."""
        return cls(
            heavy_budget=max(1, capacity - 1),
            reserved_budget=1,
            top_k=None,
            sink_tokens=0,
            recent_protect=0,
        )


@dataclass(frozen=True)
class AttentionConfig:
    """Shape parameters of the attention computation being pruned."""

    num_heads: int = 32
    head_dim: int = 128
    num_layers: int = 32
    scale: Optional[float] = None
    causal: bool = True

    def __post_init__(self) -> None:
        if self.num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if self.head_dim < 1:
            raise ValueError("head_dim must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")

    @property
    def model_dim(self) -> int:
        return self.num_heads * self.head_dim

    @property
    def softmax_scale(self) -> float:
        if self.scale is not None:
            return self.scale
        return 1.0 / float(self.head_dim) ** 0.5

    @classmethod
    def llama2_7b(cls) -> "AttentionConfig":
        """Llama-2-7B attention geometry used in the paper's Fig. 1."""
        return cls(num_heads=32, head_dim=128, num_layers=32)

    def kv_cache_bytes(self, seq_len: int, bytes_per_element: int = 2) -> int:
        """KV cache footprint in bytes for ``seq_len`` cached tokens.

        Two tensors (K and V) of shape ``[layers, heads, seq, head_dim]``.
        The paper's Fig. 1(b) uses FP16 (2 bytes/element).
        """
        if seq_len < 0:
            raise ValueError("seq_len must be >= 0")
        per_token = 2 * self.num_layers * self.num_heads * self.head_dim
        return per_token * seq_len * bytes_per_element


DEFAULT_PRUNING_CONFIG = PruningConfig()
DEFAULT_ATTENTION_CONFIG = AttentionConfig()

__all__ = [
    "PruningConfig",
    "AttentionConfig",
    "DEFAULT_PRUNING_CONFIG",
    "DEFAULT_ATTENTION_CONFIG",
]
