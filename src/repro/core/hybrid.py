"""The paper's hybrid static-dynamic KV cache pruning policy.

:class:`UniCAIMPolicy` implements the algorithm of Sec. III-A end to end:

* **Prefill** — accumulated attention scores are computed over the prompt
  and only the ``H`` heaviest tokens are written into a fixed-capacity
  :class:`~repro.core.kv_cache.SlotKVCache` of ``H + M`` slots.
* **Decoding** — at every step the newly generated KV pair is written into
  a free slot; once all ``M`` reserved slots are in use, the token with the
  lowest accumulated attention score is statically evicted and the new KV
  pair is written into the freed slot (fixed cache size, in-place update).
  The current query's similarity against all cached keys is measured by a
  pluggable selector (exact, or the CAM-mode approximate selector), the
  top-``k`` tokens are dynamically selected, exact attention is computed
  over only those tokens, and the per-step scores are added to the
  accumulated-score table that drives future static evictions.

The selector abstraction lets the same policy run in "algorithm" mode
(exact scores, what a GPU implementation would do) or in "hardware" mode
(quantised CAM scores with sense noise), which is how the circuit-level and
application-level evaluations are tied together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .attention import head_mean_scores, sparse_attention_output
from .config import PruningConfig
from .dynamic_pruning import (
    CAMApproximateSelector,
    ExactTopKSelector,
    SelectionResult,
    TopKSelector,
)
from .kv_cache import SlotKVCache
from .policy import KVCachePolicy, StepRecord
from .static_pruning import (
    accumulated_scores_from_attention,
    select_heavy_tokens,
)


@dataclass
class EvictionEvent:
    """Record of one step-wise static eviction during decoding."""

    step: int
    evicted_position: int
    evicted_score: float
    incoming_position: int


class UniCAIMPolicy(KVCachePolicy):
    """Hybrid static-dynamic KV cache pruning (the paper's algorithm).

    Parameters
    ----------
    num_heads, head_dim:
        Geometry of the attention heads this policy serves.
    config:
        :class:`~repro.core.config.PruningConfig` with ``H``, ``M``, ``k``
        and the protection / accumulation options.
    selector:
        Top-k selector used for dynamic pruning.  Defaults to the exact
        selector; pass a :class:`~repro.core.dynamic_pruning.CAMApproximateSelector`
        to model the hardware's approximate CAM selection.
    scale:
        Softmax scale for the exact attention computation (default
        ``1/sqrt(head_dim)``).
    """

    #: Magnitude of the synthetic recency scores used when ``prefill`` is
    #: called without an attention map.  Small enough that one real decoding
    #: step's scores dominate it, large enough to survive float64 rounding.
    PREFILL_FALLBACK_EPSILON = 1e-6

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        config: Optional[PruningConfig] = None,
        selector: Optional[TopKSelector] = None,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        self.config = config or PruningConfig()
        self.selector = selector or ExactTopKSelector()
        self.cache = SlotKVCache(
            capacity=self.config.cache_capacity,
            num_heads=num_heads,
            head_dim=head_dim,
        )
        self._cache_dtype = self.cache.dtype
        # Accumulated attention score per *physical cache slot*, aligned
        # with the cache arrays so the per-step update is one vector op
        # (the seed kept a Dict[int, float] keyed by token position and
        # updated it entry by entry in a Python loop).
        self._slot_scores = np.zeros(self.cache.capacity, dtype=np.float64)
        self._generated_count = 0
        self._prefill_length = 0
        self.eviction_log: list[EvictionEvent] = []

    # ------------------------------------------------------------------
    # Paged storage
    # ------------------------------------------------------------------
    def _on_pool_attached(self, pool) -> None:
        """Rebind the slot cache onto the engine's shared per-layer arena.

        The cache keeps its float32 write dtype regardless of the arena
        dtype, so quantisation (and therefore generation) is identical to
        the standalone dense layout.
        """
        self.cache = SlotKVCache(
            capacity=self.config.cache_capacity,
            num_heads=self.num_heads,
            head_dim=self.head_dim,
            dtype=self._cache_dtype,
            pool=pool,
        )
        self._slot_scores = np.zeros(self.cache.capacity, dtype=np.float64)

    def release_kv(self) -> None:
        self.cache.release()

    def decode_page_demand(self) -> int:
        return self.cache.decode_page_demand()

    def kv_pages_held(self) -> int:
        return self.cache.pages_held()

    def kv_shared_pages(self) -> int:
        return self.cache.shared_page_count()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            self.cache.capacity,
        )

    # ------------------------------------------------------------------
    # Prefill stage: one-shot static pruning
    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self._prefill_length = n
        self.stats.prefill_tokens = n

        if attention_matrix is not None:
            scores = accumulated_scores_from_attention(
                attention_matrix,
                use_softmax=self.config.use_softmax_scores,
            )
        else:
            # Without a prefill attention map (e.g. when the policy is used
            # standalone), fall back to a small position-proportional score
            # so the selection keeps the most *recent* tokens
            # (StreamingLLM-style).  A uniform zero score would not do that:
            # ``select_heavy_tokens`` breaks ties toward the lowest index,
            # which would fill the budget with the oldest tokens instead.
            scores = np.arange(n, dtype=np.float64) * (
                self.PREFILL_FALLBACK_EPSILON / max(n, 1)
            )

        result = select_heavy_tokens(
            scores,
            heavy_budget=min(self.config.heavy_budget, self.cache.capacity),
            sink_tokens=self.config.sink_tokens,
            recent_tokens=self.config.recent_protect,
        )

        self.cache.clear()
        self._slot_scores.fill(0.0)
        for position in result.kept_positions:
            pos = int(position)
            slot = self.cache.append(keys[pos], values[pos], pos, is_heavy=True)
            self._slot_scores[slot] = float(scores[pos])
        self.stats.retained_after_prefill = len(self.cache)
        self._generated_count = 0
        self.eviction_log = []

    # ------------------------------------------------------------------
    # Decoding stage: step-wise static-dynamic pruning
    # ------------------------------------------------------------------
    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)

        evicted_position = self._insert_generated(key, value, int(position))

        keys = self.cache.keys()
        values = self.cache.values()
        positions = self.cache.token_positions()
        n = keys.shape[0]

        k = self.config.effective_top_k(n)
        selection = self.selector.select(query, keys, k)
        selected = selection.selected_indices

        output = sparse_attention_output(
            query, keys, values, selected, scale=self.scale
        )

        self._accumulate_step_scores(selection)

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=n,
                num_attended=int(selected.size),
                evicted_position=evicted_position,
                selected_positions=positions[selected],
            )
        )
        return output

    def cached_positions(self) -> np.ndarray:
        return self.cache.token_positions()

    def accumulated_score(self, position: int) -> float:
        """Accumulated attention score of a cached token position."""
        slot = self.cache.slot_of_position(int(position))
        if slot is None:
            return 0.0
        return float(self._slot_scores[slot])

    def accumulated_table(self) -> Dict[int, float]:
        """Copy of the accumulated-score table (position -> score)."""
        slots = self.cache.occupied_slots()
        positions = self.cache.token_positions()
        return {
            int(pos): float(self._slot_scores[slot])
            for pos, slot in zip(positions, slots)
        }

    def reset(self) -> None:
        super().reset()
        self.cache.clear()
        self._slot_scores.fill(0.0)
        self._generated_count = 0
        self._prefill_length = 0
        self.eviction_log = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert_generated(
        self, key: np.ndarray, value: np.ndarray, position: int
    ) -> Optional[int]:
        """Write the new token's KV pair, statically evicting if the cache is full."""
        self._generated_count += 1
        if not self.cache.is_full:
            slot = self.cache.append(key, value, position, is_heavy=False)
            self._slot_scores[slot] = 0.0
            return None

        victim_position = self._choose_eviction_victim(position)
        victim_slot = self.cache.slot_of_position(victim_position)
        assert victim_slot is not None
        victim_score = float(self._slot_scores[victim_slot])
        self.cache.replace(victim_slot, key, value, position, is_heavy=False)
        self._slot_scores[victim_slot] = 0.0
        self.eviction_log.append(
            EvictionEvent(
                step=self._generated_count,
                evicted_position=victim_position,
                evicted_score=victim_score,
                incoming_position=position,
            )
        )
        return victim_position

    def _choose_eviction_victim(self, incoming_position: int) -> int:
        """Token position with the lowest accumulated score, honouring protections.

        Fully vectorized: the protection rules become boolean masks over
        the cached-position array (the seed built Python sets and lists).
        """
        positions = self.cache.token_positions()
        slots = self.cache.occupied_slots()

        protected = np.zeros(positions.shape, dtype=bool)
        if self.config.sink_tokens > 0:
            protected |= positions < self.config.sink_tokens
        if self.config.recent_protect > 0:
            protected |= positions >= incoming_position - self.config.recent_protect

        candidates = ~protected
        if not candidates.any():
            candidates = np.ones(positions.shape, dtype=bool)

        cand_positions = positions[candidates]
        cand_scores = self._slot_scores[slots[candidates]]
        # Lowest score wins; ties break toward the earliest position.
        order = np.lexsort((cand_positions, cand_scores))
        return int(cand_positions[order[0]])

    def _accumulate_step_scores(self, selection: SelectionResult) -> None:
        """Add this step's similarity scores to the accumulated table.

        The charge-domain CIM accumulates the (approximate) similarity of
        every row in the same cycle as the CAM comparison, so the table is
        updated for every cached token, not only the selected ones.  The
        step scores are aligned with the occupied-slot order the selector
        saw, so the whole update is a single vectorized scatter.
        """
        if self.config.use_softmax_scores:
            scores = np.asarray(selection.exact_scores, dtype=np.float64)
            scores = scores * self.scale
            shifted = scores - scores.max()
            weights = np.exp(shifted)
            step_scores = weights / max(float(weights.sum()), 1e-12)
        else:
            step_scores = np.asarray(selection.scores, dtype=np.float64)

        slots = self.cache.occupied_slots()
        decay = self.config.score_decay
        if decay != 1.0:
            self._slot_scores[slots] *= decay
        self._slot_scores[slots] += step_scores


def make_policy(
    mode: str,
    num_heads: int,
    head_dim: int,
    config: Optional[PruningConfig] = None,
    cam_selector: Optional[CAMApproximateSelector] = None,
) -> UniCAIMPolicy:
    """Convenience factory for the two flavours of the UniCAIM policy.

    ``mode`` is ``"exact"`` (algorithmic reference) or ``"cam"`` (hardware
    behavioural selection with quantised scores).
    """
    if mode == "exact":
        selector: TopKSelector = ExactTopKSelector()
    elif mode == "cam":
        selector = cam_selector or CAMApproximateSelector()
    else:
        raise ValueError(f"unknown UniCAIM policy mode: {mode!r}")
    return UniCAIMPolicy(
        num_heads=num_heads,
        head_dim=head_dim,
        config=config,
        selector=selector,
    )


__all__ = ["UniCAIMPolicy", "EvictionEvent", "make_policy"]
