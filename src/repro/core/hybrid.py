"""The paper's hybrid static-dynamic KV cache pruning policy.

:class:`UniCAIMPolicy` implements the algorithm of Sec. III-A end to end:

* **Prefill** — accumulated attention scores are computed over the prompt
  and only the ``H`` heaviest tokens are written into a fixed-capacity
  :class:`~repro.core.kv_cache.SlotKVCache` of ``H + M`` slots.
* **Decoding** — at every step the newly generated KV pair is written into
  a free slot; once all ``M`` reserved slots are in use, the token with the
  lowest accumulated attention score is statically evicted and the new KV
  pair is written into the freed slot (fixed cache size, in-place update).
  The current query's similarity against all cached keys is measured by a
  pluggable selector (exact, or the CAM-mode approximate selector), the
  top-``k`` tokens are dynamically selected, exact attention is computed
  over only those tokens, and the per-step scores are added to the
  accumulated-score table that drives future static evictions.

The selector abstraction lets the same policy run in "algorithm" mode
(exact scores, what a GPU implementation would do) or in "hardware" mode
(quantised CAM scores with sense noise), which is how the circuit-level and
application-level evaluations are tied together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .attention import head_mean_scores, sparse_attention_output, top_k_indices
from .config import PruningConfig
from .dynamic_pruning import (
    CAMApproximateSelector,
    ExactTopKSelector,
    SelectionResult,
    TopKSelector,
)
from .group_decode import batched_group_attention, gather_group_kv
from .kv_cache import SlotKVCache
from .policy import KVCachePolicy, StepRecord
from .static_pruning import (
    accumulated_scores_from_attention,
    select_heavy_tokens,
)


@dataclass
class EvictionEvent:
    """Record of one step-wise static eviction during decoding."""

    step: int
    evicted_position: int
    evicted_score: float
    incoming_position: int


class UniCAIMPolicy(KVCachePolicy):
    """Hybrid static-dynamic KV cache pruning (the paper's algorithm).

    Parameters
    ----------
    num_heads, head_dim:
        Geometry of the attention heads this policy serves.
    config:
        :class:`~repro.core.config.PruningConfig` with ``H``, ``M``, ``k``
        and the protection / accumulation options.
    selector:
        Top-k selector used for dynamic pruning.  Defaults to the exact
        selector; pass a :class:`~repro.core.dynamic_pruning.CAMApproximateSelector`
        to model the hardware's approximate CAM selection.
    scale:
        Softmax scale for the exact attention computation (default
        ``1/sqrt(head_dim)``).
    """

    #: Magnitude of the synthetic recency scores used when ``prefill`` is
    #: called without an attention map.  Small enough that one real decoding
    #: step's scores dominate it, large enough to survive float64 rounding.
    PREFILL_FALLBACK_EPSILON = 1e-6

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        config: Optional[PruningConfig] = None,
        selector: Optional[TopKSelector] = None,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        self.config = config or PruningConfig()
        self.selector = selector or ExactTopKSelector()
        self.cache = SlotKVCache(
            capacity=self.config.cache_capacity,
            num_heads=num_heads,
            head_dim=head_dim,
        )
        self._cache_dtype = self.cache.dtype
        # Accumulated attention score per *physical cache slot*, aligned
        # with the cache arrays so the per-step update is one vector op
        # (the seed kept a Dict[int, float] keyed by token position and
        # updated it entry by entry in a Python loop).
        self._slot_scores = np.zeros(self.cache.capacity, dtype=np.float64)
        self._generated_count = 0
        self._prefill_length = 0
        self.eviction_log: list[EvictionEvent] = []

    # ------------------------------------------------------------------
    # Paged storage
    # ------------------------------------------------------------------
    def _on_pool_attached(self, pool) -> None:
        """Rebind the slot cache onto the engine's shared per-layer arena.

        The cache keeps its float32 write dtype regardless of the arena
        dtype, so quantisation (and therefore generation) is identical to
        the standalone dense layout.
        """
        self.cache = SlotKVCache(
            capacity=self.config.cache_capacity,
            num_heads=self.num_heads,
            head_dim=self.head_dim,
            dtype=self._cache_dtype,
            pool=pool,
        )
        self._slot_scores = np.zeros(self.cache.capacity, dtype=np.float64)

    def release_kv(self) -> None:
        self.cache.release()

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Never: every decode step attends through top-k selection (exact
        or CAM-approximate, the latter drawing from the selector's private
        RNG) and accumulates charge-decayed slot scores, so generated
        tokens' hidden states depend on pruned attention a dense re-prefill
        cannot reproduce.  Preempted UniCAIM sequences resume by replaying
        the recorded tokens, which rebuilds the charge state, the RNG
        stream and the stats deterministically (fresh policies re-seed the
        selector from its config)."""
        return False

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Never — made explicit rather than inherited.  Every decode step
        mutates state a rejected draft cannot roll back: slot scores decay
        and accumulate per step, fixed-capacity slots evict by charge, and
        the CAM-approximate selector advances its private RNG stream per
        comparison — re-running the "kept prefix" after a rollback would
        consume *different* RNG draws than plain decode did.  Speculative
        sequences under UniCAIM fall back per-sequence to one-token decode
        and remain token-identical."""
        return False

    def decode_page_demand(self) -> int:
        return self.cache.decode_page_demand()

    def kv_pages_held(self) -> int:
        return self.cache.pages_held()

    def kv_shared_pages(self) -> int:
        return self.cache.shared_page_count()

    def kv_resident_bytes(self) -> int:
        return self.cache.resident_bytes()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            self.cache.capacity,
        )

    # ------------------------------------------------------------------
    # Prefill stage: one-shot static pruning
    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self._prefill_length = n
        self.stats.prefill_tokens = n

        if attention_matrix is not None:
            scores = accumulated_scores_from_attention(
                attention_matrix,
                use_softmax=self.config.use_softmax_scores,
            )
        else:
            # Without a prefill attention map (e.g. when the policy is used
            # standalone), fall back to a small position-proportional score
            # so the selection keeps the most *recent* tokens
            # (StreamingLLM-style).  A uniform zero score would not do that:
            # ``select_heavy_tokens`` breaks ties toward the lowest index,
            # which would fill the budget with the oldest tokens instead.
            scores = np.arange(n, dtype=np.float64) * (
                self.PREFILL_FALLBACK_EPSILON / max(n, 1)
            )

        result = select_heavy_tokens(
            scores,
            heavy_budget=min(self.config.heavy_budget, self.cache.capacity),
            sink_tokens=self.config.sink_tokens,
            recent_tokens=self.config.recent_protect,
        )

        self.cache.clear()
        self._slot_scores.fill(0.0)
        for position in result.kept_positions:
            pos = int(position)
            slot = self.cache.append(keys[pos], values[pos], pos, is_heavy=True)
            self._slot_scores[slot] = float(scores[pos])
        self.stats.retained_after_prefill = len(self.cache)
        self._generated_count = 0
        self.eviction_log = []

    # ------------------------------------------------------------------
    # Decoding stage: step-wise static-dynamic pruning
    # ------------------------------------------------------------------
    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)

        evicted_position = self._insert_generated(key, value, int(position))

        keys = self.cache.keys()
        values = self.cache.values()
        positions = self.cache.token_positions()
        n = keys.shape[0]

        k = self.config.effective_top_k(n)
        selection = self.selector.select(query, keys, k)
        selected = selection.selected_indices

        output = sparse_attention_output(
            query, keys, values, selected, scale=self.scale
        )

        self._accumulate_step_scores(selection)

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=n,
                num_attended=int(selected.size),
                evicted_position=evicted_position,
                selected_positions=positions[selected],
            )
        )
        return output

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized hybrid decode for a whole policy group.

        Per member only the cheap scalar bookkeeping remains (insert /
        static-evict into the slot cache, already vectorized internally);
        the heavy math is batched: one padded gather over every member's
        slot cache, the selector's similarity GEMM computed as one
        ``[S, h, T]`` tensor (for the CAM selector the quantise-and-match
        runs across all member score tables, with each member's per-call
        normalisation and sense-noise draw preserved), and one batched
        masked attention over the dynamically selected tokens.

        Returns ``None`` (before touching any state) for selector types the
        batched match does not know — such groups run the per-sequence
        loop.
        """
        selector_type = type(self.selector)
        if selector_type not in (ExactTopKSelector, CAMApproximateSelector):
            return None
        if any(type(policy.selector) is not selector_type for policy in group):
            return None

        queries = np.asarray(queries, dtype=np.float64)
        victims = self._group_choose_victims(group, positions)
        evicted: List[Optional[int]] = []
        for row, (policy, key, value, position) in enumerate(
            zip(group, keys, values, positions)
        ):
            evicted.append(
                policy._insert_generated(
                    np.asarray(key, dtype=np.float64),
                    np.asarray(value, dtype=np.float64),
                    int(position),
                    victim_position=None if victims is None else victims[row],
                )
            )
        tables = [policy.cache.block_table for policy in group]
        slot_lists = [policy.cache.occupied_slots() for policy in group]
        position_arrays = [policy.cache.token_positions() for policy in group]
        gathered_k, gathered_v, lengths, valid = gather_group_kv(
            tables, slot_lists
        )
        keys64 = np.asarray(gathered_k, dtype=np.float64)

        # Exact similarity of every member at once: one [S, h, T] GEMM,
        # head-mean-reduced to the per-token score tables.
        exact_raw = np.einsum("sthd,shd->sht", keys64, queries)
        exact_mean = exact_raw.mean(axis=1)  # [S, T]
        if selector_type is CAMApproximateSelector:
            # Quantisation is normalised per call (each member's own key
            # statistics), then the CAM match is one batched GEMM.
            quant_q = np.stack(
                [
                    policy.selector.quantize_query(queries[row])
                    for row, policy in enumerate(group)
                ]
            )
            quant_k = np.zeros_like(keys64)
            for row, policy in enumerate(group):
                size = int(lengths[row])
                quant_k[row, :size] = policy.selector.quantize_keys(
                    keys64[row, :size]
                )
            match_mean = np.einsum("sthd,shd->sht", quant_k, quant_q).mean(
                axis=1
            )

        # Per-member ranking scores as one [S, T] table.  For the exact
        # selector without a private scale this *is* the exact score table;
        # CAM rows get each member's sense-noise draw added in place.
        plain_exact = selector_type is ExactTopKSelector and all(
            policy.selector.scale is None for policy in group
        )
        if selector_type is CAMApproximateSelector:
            for row, policy in enumerate(group):
                config = policy.selector.config
                if config.sense_noise_sigma > 0.0:
                    size = int(lengths[row])
                    match_mean[row, :size] += policy.selector._rng.normal(
                        0.0, config.sense_noise_sigma, size=size
                    )
            rank_mat = match_mean
        elif plain_exact:
            rank_mat = exact_mean
        else:
            rank_mat = None
        if rank_mat is not None:
            # One stable argsort over the whole group: descending score
            # with index tie-break, exactly ``top_k_indices`` per row
            # (padding ranks last as +inf).
            order_mat = np.argsort(
                np.where(valid, -rank_mat, np.inf), axis=1, kind="stable"
            )

        select = np.zeros_like(valid)
        selections: List[SelectionResult] = []
        for row, policy in enumerate(group):
            size = int(lengths[row])
            top_k = policy.config.effective_top_k(size)
            exact_scores = exact_mean[row, :size]
            if rank_mat is not None:
                selection = SelectionResult(
                    selected_indices=order_mat[row, :top_k],
                    scores=rank_mat[row, :size],
                    exact_scores=exact_scores,
                )
            else:
                # Mixed-scale exact selectors in one group: rank each
                # member with its own selector semantics.  A private scale
                # multiplies the per-head scores *before* the head mean
                # (the serial rounding order); scale-less members rank the
                # plain head-mean scores.
                if policy.selector.scale is None:
                    scores = exact_scores
                else:
                    scores = (
                        exact_raw[row, :, :size] * float(policy.selector.scale)
                    ).mean(axis=0)
                selection = SelectionResult(
                    selected_indices=top_k_indices(scores, top_k),
                    scores=scores,
                    exact_scores=scores.copy(),
                )
            selections.append(selection)
            select[row, selection.selected_indices] = True

        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, _ = batched_group_attention(
            queries,
            gathered_k,
            gathered_v,
            select,
            scales=scales,
            raw_scores=exact_raw,
        )

        # Charge-accumulation update, batched: the softmax-normalised step
        # scores of every member come from one masked [S, T] pass over the
        # already-computed exact score tables (valid whenever the selector
        # reports plain head-mean exact scores — always for CAM, and for
        # the exact selector unless it carries its own scale).
        step_scores = None
        batched_accumulate = selector_type is CAMApproximateSelector or all(
            policy.selector.scale is None for policy in group
        )
        if batched_accumulate and any(
            policy.config.use_softmax_scores for policy in group
        ):
            masked = np.where(valid, exact_mean * scales[:, None], -np.inf)
            weights = np.exp(masked - masked.max(axis=1, keepdims=True))
            sums = np.maximum(weights.sum(axis=1, keepdims=True), 1e-12)
            step_scores = weights / sums

        for row, (policy, position, victim, selection) in enumerate(
            zip(group, positions, evicted, selections)
        ):
            if step_scores is not None and policy.config.use_softmax_scores:
                slots = slot_lists[row]
                if policy.config.score_decay != 1.0:
                    policy._slot_scores[slots] *= policy.config.score_decay
                policy._slot_scores[slots] += step_scores[row, : int(lengths[row])]
            else:
                policy._accumulate_step_scores(selection)
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=int(lengths[row]),
                    num_attended=selection.k,
                    evicted_position=victim,
                    selected_positions=position_arrays[row][
                        selection.selected_indices
                    ],
                )
            )
        return outputs

    def cached_positions(self) -> np.ndarray:
        return self.cache.token_positions()

    def accumulated_score(self, position: int) -> float:
        """Accumulated attention score of a cached token position."""
        slot = self.cache.slot_of_position(int(position))
        if slot is None:
            return 0.0
        return float(self._slot_scores[slot])

    def accumulated_table(self) -> Dict[int, float]:
        """Copy of the accumulated-score table (position -> score)."""
        slots = self.cache.occupied_slots()
        positions = self.cache.token_positions()
        return {
            int(pos): float(self._slot_scores[slot])
            for pos, slot in zip(positions, slots)
        }

    def reset(self) -> None:
        super().reset()
        self.cache.clear()
        self._slot_scores.fill(0.0)
        self._generated_count = 0
        self._prefill_length = 0
        self.eviction_log = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert_generated(
        self,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
        victim_position: Optional[int] = None,
    ) -> Optional[int]:
        """Write the new token's KV pair, statically evicting if the cache is full.

        ``victim_position`` short-circuits the victim search with a
        precomputed choice (the batched group-decode path selects every
        member's victim in one masked reduction); it must equal what
        :meth:`_choose_eviction_victim` would return.
        """
        self._generated_count += 1
        if not self.cache.is_full:
            slot = self.cache.append(key, value, position, is_heavy=False)
            self._slot_scores[slot] = 0.0
            return None

        if victim_position is None:
            victim_position = self._choose_eviction_victim(position)
        victim_slot = self.cache.slot_of_position(victim_position)
        assert victim_slot is not None
        victim_score = float(self._slot_scores[victim_slot])
        self.cache.replace(victim_slot, key, value, position, is_heavy=False)
        self._slot_scores[victim_slot] = 0.0
        self.eviction_log.append(
            EvictionEvent(
                step=self._generated_count,
                evicted_position=victim_position,
                evicted_score=victim_score,
                incoming_position=position,
            )
        )
        return victim_position

    @staticmethod
    def _group_choose_victims(
        group: Sequence["UniCAIMPolicy"], positions: Sequence[int]
    ) -> Optional[List[Optional[int]]]:
        """Every member's static-eviction victim in one masked reduction.

        A full slot cache has every slot occupied, so its in-slot-order
        position and accumulated-score arrays stack directly into
        ``[S, capacity]`` matrices; the serial rule — lowest accumulated
        score among unprotected tokens, ties toward the earliest position
        — becomes a masked min plus a tie-break min (comparisons only, so
        the choice is bit-identical to :meth:`_choose_eviction_victim`).
        Returns ``None`` (per-member fallback) for heterogeneous
        capacities; members with free slots get a ``None`` victim.
        """
        full_rows = [
            row for row, policy in enumerate(group) if policy.cache.is_full
        ]
        if len(full_rows) < 2:
            return None
        if len({group[row].cache.capacity for row in full_rows}) != 1:
            return None
        # Full caches: occupied slots are 0..capacity-1, so the cached
        # in-slot-order views stack without any per-member gather.
        pos_mat = np.stack(
            [group[row].cache.token_positions() for row in full_rows]
        )
        score_mat = np.stack([group[row]._slot_scores for row in full_rows])
        sinks = np.asarray(
            [group[row].config.sink_tokens for row in full_rows]
        )[:, None]
        recents = np.asarray(
            [group[row].config.recent_protect for row in full_rows]
        )[:, None]
        incoming = np.asarray([int(positions[row]) for row in full_rows])[
            :, None
        ]
        protected = (pos_mat < sinks) | (
            (recents > 0) & (pos_mat >= incoming - recents)
        )
        candidates = ~protected
        all_protected = ~candidates.any(axis=1)
        candidates[all_protected] = True
        masked_scores = np.where(candidates, score_mat, np.inf)
        best = masked_scores.min(axis=1, keepdims=True)
        tie_positions = np.where(
            masked_scores == best, pos_mat, np.iinfo(np.int64).max
        )
        victim_positions = tie_positions.min(axis=1)
        victims: List[Optional[int]] = [None] * len(group)
        for index, row in enumerate(full_rows):
            victims[row] = int(victim_positions[index])
        return victims

    def _choose_eviction_victim(self, incoming_position: int) -> int:
        """Token position with the lowest accumulated score, honouring protections.

        Fully vectorized: the protection rules become boolean masks over
        the cached-position array (the seed built Python sets and lists).
        """
        positions = self.cache.token_positions()
        slots = self.cache.occupied_slots()

        protected = np.zeros(positions.shape, dtype=bool)
        if self.config.sink_tokens > 0:
            protected |= positions < self.config.sink_tokens
        if self.config.recent_protect > 0:
            protected |= positions >= incoming_position - self.config.recent_protect

        candidates = ~protected
        if not candidates.any():
            candidates = np.ones(positions.shape, dtype=bool)

        cand_positions = positions[candidates]
        cand_scores = self._slot_scores[slots[candidates]]
        # Lowest score wins; ties break toward the earliest position.
        order = np.lexsort((cand_positions, cand_scores))
        return int(cand_positions[order[0]])

    def _accumulate_step_scores(self, selection: SelectionResult) -> None:
        """Add this step's similarity scores to the accumulated table.

        The charge-domain CIM accumulates the (approximate) similarity of
        every row in the same cycle as the CAM comparison, so the table is
        updated for every cached token, not only the selected ones.  The
        step scores are aligned with the occupied-slot order the selector
        saw, so the whole update is a single vectorized scatter.
        """
        if self.config.use_softmax_scores:
            scores = np.asarray(selection.exact_scores, dtype=np.float64)
            scores = scores * self.scale
            shifted = scores - scores.max()
            weights = np.exp(shifted)
            step_scores = weights / max(float(weights.sum()), 1e-12)
        else:
            step_scores = np.asarray(selection.scores, dtype=np.float64)

        slots = self.cache.occupied_slots()
        decay = self.config.score_decay
        if decay != 1.0:
            self._slot_scores[slots] *= decay
        self._slot_scores[slots] += step_scores


def make_policy(
    mode: str,
    num_heads: int,
    head_dim: int,
    config: Optional[PruningConfig] = None,
    cam_selector: Optional[CAMApproximateSelector] = None,
) -> UniCAIMPolicy:
    """Convenience factory for the two flavours of the UniCAIM policy.

    ``mode`` is ``"exact"`` (algorithmic reference) or ``"cam"`` (hardware
    behavioural selection with quantised scores).
    """
    if mode == "exact":
        selector: TopKSelector = ExactTopKSelector()
    elif mode == "cam":
        selector = cam_selector or CAMApproximateSelector()
    else:
        raise ValueError(f"unknown UniCAIM policy mode: {mode!r}")
    return UniCAIMPolicy(
        num_heads=num_heads,
        head_dim=head_dim,
        config=config,
        selector=selector,
    )


__all__ = ["UniCAIMPolicy", "EvictionEvent", "make_policy"]
