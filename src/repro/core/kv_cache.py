"""Fixed-size, slot-based KV cache as a view over paged pool storage.

The hardware motivation (paper Sec. III-A.2 and Fig. 3b) is that the UniCAIM
array has a fixed number of rows: ``H`` rows hold the heavy tokens retained
after prefill and ``M`` rows are reserved for tokens generated during
decoding.  When a token is statically evicted, the newly generated KV pair
is written *into the freed row* ("directly fill with newly-generated KV in
the statically evicted position") instead of shifting memory around.

:class:`SlotKVCache` models exactly that: a fixed array of slots addressed
by physical row index, with a mapping back to logical token positions so
that causal masking and accuracy evaluation remain possible.

Since the paged-KV refactor the slot *data* no longer lives in a private
dense array: slots map onto pages of a :class:`~repro.core.kv_pool.PagedKVPool`
through a :class:`~repro.core.kv_pool.BlockTable`.  Standalone caches own a
private single-page pool (behaviourally identical to the old dense array);
the serving engine instead binds every sequence's caches to one shared
per-layer arena, so pages are allocated on demand, shared prefix pages are
stored once, and a write into a shared page copy-on-write splits it.  The
public API is unchanged, so every ``KVCachePolicy`` backend runs unmodified.

The cache is a decode-loop hot path, so reads are zero-copy where possible:
``keys()`` / ``values()`` / ``token_positions()`` / ``occupied_slots()``
return cached read-only arrays that are refreshed lazily after a mutation
instead of gathering a fresh copy on every call, and the position -> slot
lookup is an O(1) dict maintained on write/evict.  The number of gathered
arrays built — including the block-table gathers of the paged path — is
exposed via :attr:`SlotKVCache.materialization_count` so perf regressions
are testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kv_codec import CodecSpec, MixedPrecisionConfig
from .kv_pool import BlockTable, PagedKVPool


@dataclass
class CacheEntry:
    """Metadata for one occupied cache slot."""

    slot: int
    token_position: int
    is_heavy: bool


class SlotKVCache:
    """A fixed-capacity KV cache with in-place slot reuse.

    Parameters
    ----------
    capacity:
        Total number of slots (``H + M`` in the paper).
    num_heads:
        Number of attention heads sharing this cache.  Keys and values are
        stored per head.
    head_dim:
        Dimensionality of each key / value vector.
    dtype:
        *Write* dtype: keys/values are coerced through it before being
        stored, so quantisation behaviour (float32 by default) is the same
        whether the backing pool stores float32 or float64.
    pool:
        Optional shared :class:`~repro.core.kv_pool.PagedKVPool` to
        allocate slot pages from.  ``None`` (standalone use) creates a
        private pool whose page size equals ``capacity`` — one lazily
        allocated page, matching the old dense layout.
    codec, mixed_precision:
        Storage codec of the private pool (ignored when ``pool`` is
        given — a shared pool already owns its codec).  ``"int8"`` /
        ``"int4"`` store slot rows quantised; reads dequantise inside the
        block-table gathers, so policy selector math sees plain floats.
    """

    def __init__(
        self,
        capacity: int,
        num_heads: int,
        head_dim: int,
        dtype: np.dtype = np.float32,
        pool: Optional[PagedKVPool] = None,
        codec: CodecSpec = None,
        mixed_precision: Optional[MixedPrecisionConfig] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if head_dim < 1:
            raise ValueError("head_dim must be >= 1")
        self.capacity = int(capacity)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.dtype = np.dtype(dtype)

        if pool is None:
            pool = PagedKVPool(
                page_size=self.capacity,
                num_heads=self.num_heads,
                head_dim=self.head_dim,
                dtype=self.dtype,
                codec=codec,
                mixed_precision=mixed_precision,
            )
        elif pool.num_heads != self.num_heads or pool.head_dim != self.head_dim:
            raise ValueError(
                f"pool geometry ({pool.num_heads}, {pool.head_dim}) does not "
                f"match cache ({self.num_heads}, {self.head_dim})"
            )
        self.pool = pool
        self._table = BlockTable(pool)

        self._occupied = np.zeros(capacity, dtype=bool)
        self._token_positions = np.full(capacity, -1, dtype=np.int64)
        self._is_heavy = np.zeros(capacity, dtype=bool)
        # Free slots as an insertion-ordered dict used as a stack: popitem()
        # allocates in ascending slot order (0 first), evicted slots are
        # re-appended LIFO, and arbitrary removal (overwrite of a free slot)
        # is O(1) instead of the old list.remove's O(capacity).
        self._free_slots: Dict[int, None] = dict.fromkeys(
            range(capacity - 1, -1, -1)
        )
        self._writes = 0
        self._evictions = 0
        # O(1) logical-position lookup, maintained on every write/evict.
        self._pos_to_slot: Dict[int, int] = {}
        # Lazily refreshed read views (see the module docstring).
        self._cached_slots: Optional[np.ndarray] = None
        self._cached_keys: Optional[np.ndarray] = None
        self._cached_values: Optional[np.ndarray] = None
        self._cached_positions: Optional[np.ndarray] = None
        self._materializations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._occupied.sum())

    @property
    def num_free_slots(self) -> int:
        return len(self._free_slots)

    @property
    def is_full(self) -> bool:
        return not self._free_slots

    @property
    def write_count(self) -> int:
        """Total number of slot writes performed (including overwrites)."""
        return self._writes

    @property
    def eviction_count(self) -> int:
        return self._evictions

    @property
    def materialization_count(self) -> int:
        """Number of gathered cache arrays built since construction.

        Each lazy view refresh (occupied slots, keys, values or positions)
        counts once, as does every explicit :meth:`gather` — under paging
        each of those is a block-table gather over pool pages.  Repeated
        reads between mutations are free.  Perf smoke tests assert this
        stays O(decode steps).
        """
        return self._materializations

    def occupied_slots(self) -> np.ndarray:
        """Physical indices of occupied slots, in ascending slot order.

        The returned array is a cached read-only view; it is refreshed only
        after a mutation, so callers must not write to it.
        """
        if self._cached_slots is None:
            slots = np.nonzero(self._occupied)[0]
            slots.setflags(write=False)
            self._cached_slots = slots
            self._materializations += 1
        return self._cached_slots

    def token_positions(self) -> np.ndarray:
        """Logical token positions of the occupied slots (ascending slot order).

        Cached read-only view, refreshed lazily after mutations.
        """
        if self._cached_positions is None:
            positions = self._token_positions[self.occupied_slots()]
            positions.setflags(write=False)
            self._cached_positions = positions
            self._materializations += 1
        return self._cached_positions

    def entries(self) -> List[CacheEntry]:
        """All occupied entries as :class:`CacheEntry` records."""
        return [
            CacheEntry(
                slot=int(slot),
                token_position=int(self._token_positions[slot]),
                is_heavy=bool(self._is_heavy[slot]),
            )
            for slot in self.occupied_slots()
        ]

    def slot_of_position(self, token_position: int) -> Optional[int]:
        """Physical slot currently holding ``token_position`` (or ``None``).

        O(1): served from the position -> slot map maintained on writes and
        evictions (the seed implementation scanned every slot).
        """
        return self._pos_to_slot.get(int(token_position))

    def contains_position(self, token_position: int) -> bool:
        return self.slot_of_position(token_position) is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(
        self,
        key: np.ndarray,
        value: np.ndarray,
        token_position: int,
        is_heavy: bool = False,
    ) -> int:
        """Write a KV pair into a free slot and return the slot index.

        Raises
        ------
        RuntimeError
            If the cache is full.  Callers are expected to evict first
            (this mirrors the hardware, which must free a row before the
            new token's write cycle).
        """
        if not self._free_slots:
            raise RuntimeError(
                "KV cache is full; evict a slot before appending"
            )
        slot, _ = self._free_slots.popitem()
        self._write_slot(slot, key, value, token_position, is_heavy)
        return slot

    def overwrite(
        self,
        slot: int,
        key: np.ndarray,
        value: np.ndarray,
        token_position: int,
        is_heavy: bool = False,
    ) -> None:
        """Overwrite a slot in place (single write cycle, no data movement)."""
        self._check_slot(slot)
        if not self._occupied[slot]:
            self._free_slots.pop(slot, None)
        self._write_slot(slot, key, value, token_position, is_heavy)

    def evict(self, slot: int) -> CacheEntry:
        """Mark a slot as free and return the metadata of the evicted entry."""
        self._check_slot(slot)
        if not self._occupied[slot]:
            raise ValueError(f"slot {slot} is not occupied")
        entry = CacheEntry(
            slot=int(slot),
            token_position=int(self._token_positions[slot]),
            is_heavy=bool(self._is_heavy[slot]),
        )
        self._occupied[slot] = False
        self._pos_to_slot.pop(entry.token_position, None)
        self._token_positions[slot] = -1
        self._is_heavy[slot] = False
        self._free_slots[slot] = None
        self._evictions += 1
        self._invalidate_views()
        return entry

    def evict_position(self, token_position: int) -> CacheEntry:
        slot = self.slot_of_position(token_position)
        if slot is None:
            raise KeyError(f"token position {token_position} is not cached")
        return self.evict(slot)

    def replace(
        self,
        evict_slot: int,
        key: np.ndarray,
        value: np.ndarray,
        token_position: int,
        is_heavy: bool = False,
    ) -> CacheEntry:
        """Evict ``evict_slot`` and immediately write the new KV pair there.

        This is the paper's "directly fill with newly-generated KV in the
        statically evicted position" operation: a single write cycle with no
        memory swapping.  If the slot's page is shared with another block
        table (an adopted prefix page), the write copy-on-write splits it
        first, so sharers never observe the eviction.
        """
        evicted = self.evict(evict_slot)
        self.overwrite(evict_slot, key, value, token_position, is_heavy)
        return evicted

    def clear(self) -> None:
        """Reset the cache to empty, releasing its pool pages."""
        self._table.release()
        self._occupied.fill(False)
        self._token_positions.fill(-1)
        self._is_heavy.fill(False)
        self._free_slots = dict.fromkeys(range(self.capacity - 1, -1, -1))
        self._pos_to_slot = {}
        self._invalidate_views()

    def release(self) -> None:
        """Return every held page to the pool (idempotent alias of clear).

        The serving engine calls this when a sequence retires so the shared
        arena gets its pages back; a released cache can be reused.
        """
        self.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def keys(self, head: Optional[int] = None) -> np.ndarray:
        """Keys of occupied slots, shape ``[n, heads, d]`` or ``[n, d]``.

        Cached read-only view, refreshed lazily after mutations; per-head
        selection slices the cached array without copying.
        """
        if self._cached_keys is None:
            keys = self._table.gather_keys(self.occupied_slots())
            keys.setflags(write=False)
            self._cached_keys = keys
            self._materializations += 1
        if head is None:
            return self._cached_keys
        return self._cached_keys[:, head, :]

    def values(self, head: Optional[int] = None) -> np.ndarray:
        """Values of occupied slots; cached read-only view like :meth:`keys`."""
        if self._cached_values is None:
            values = self._table.gather_values(self.occupied_slots())
            values.setflags(write=False)
            self._cached_values = values
            self._materializations += 1
        if head is None:
            return self._cached_values
        return self._cached_values[:, head, :]

    def gather(
        self, slots: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather (keys, values, token_positions) for an explicit slot list.

        Counts one materialisation: under paging this is a fresh
        block-table gather over pool pages, so the perf-smoke budget keeps
        guarding the decode hot path.
        """
        slots_arr = np.asarray(list(slots), dtype=np.int64)
        if slots_arr.size:
            out_of_range = (slots_arr < 0) | (slots_arr >= self.capacity)
            if out_of_range.any():
                bad = int(slots_arr[out_of_range][0])
                raise IndexError(
                    f"slot {bad} out of range for capacity {self.capacity}"
                )
            unoccupied = ~self._occupied[slots_arr]
            if unoccupied.any():
                raise ValueError(
                    f"slot {int(slots_arr[unoccupied][0])} is not occupied"
                )
        keys, values = self._table.gather(slots_arr)
        self._materializations += 1
        return keys, values, self._token_positions[slots_arr]

    def key_at(self, slot: int, head: Optional[int] = None) -> np.ndarray:
        self._check_slot(slot)
        row = self._row(self._table.gather_keys, slot)
        if head is None:
            return row
        return row[head]

    def value_at(self, slot: int, head: Optional[int] = None) -> np.ndarray:
        self._check_slot(slot)
        row = self._row(self._table.gather_values, slot)
        if head is None:
            return row
        return row[head]

    def position_to_slot_map(self) -> Dict[int, int]:
        return dict(self._pos_to_slot)

    def memory_bytes(self) -> int:
        """Bytes of key/value storage the full slot grid would occupy.

        This is the cache's *logical* footprint (``capacity`` rows in the
        cache's write dtype) — the dense baseline the paged pool is
        measured against.  See :meth:`resident_bytes` for what is actually
        allocated.
        """
        return int(
            2 * self.capacity * self.num_heads * self.head_dim
            * self.dtype.itemsize
        )

    def resident_bytes(self) -> int:
        """Bytes of pool pages this cache currently holds references to.

        Codec-true: quantised arenas report quantised bytes (including
        scale metadata and any full-precision overlay the mixed-precision
        policy is pinning), not the compute-dtype size the rows dequantise
        to.
        """
        return self._table.resident_bytes()

    def pages_held(self) -> int:
        return self._table.pages_held()

    @property
    def block_table(self) -> BlockTable:
        """The slot -> pool-page mapping (for batched group gathers).

        Combined with :meth:`occupied_slots`, this lets
        :func:`~repro.core.kv_pool.gather_padded` read many caches' rows
        with one pool gather per shared arena instead of one per cache.
        """
        return self._table

    def shared_page_count(self) -> int:
        """Held pages currently shared with another table or cache entry."""
        return self._table.shared_page_count()

    def decode_page_demand(self) -> int:
        """Pages the next decode-step write could pull from the pool.

        Conservative: 1 when the next append target's block is unallocated,
        or when any held page is shared (an in-place replace would then
        copy-on-write split it); 0 otherwise.  The serving engine sums this
        over a batch before stepping so a decode wave never hits pool
        exhaustion mid-GEMM.
        """
        if self._free_slots:
            next_slot = next(reversed(self._free_slots))
            if self._table.would_allocate(next_slot):
                return 1
        return 1 if self._table.any_shared() else 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _row(self, gather, slot: int) -> np.ndarray:
        try:
            return gather(np.asarray([slot], dtype=np.int64))[0]
        except (ValueError, IndexError):
            # Never-written slot: the dense layout returned zeros.
            return np.zeros((self.num_heads, self.head_dim), dtype=self.pool.dtype)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.capacity:
            raise IndexError(
                f"slot {slot} out of range for capacity {self.capacity}"
            )

    def _coerce(self, array: np.ndarray, name: str) -> np.ndarray:
        arr = np.asarray(array, dtype=self.dtype)
        expected = (self.num_heads, self.head_dim)
        if arr.shape == (self.head_dim,) and self.num_heads == 1:
            arr = arr.reshape(1, self.head_dim)
        if arr.shape != expected:
            raise ValueError(
                f"{name} must have shape {expected}, got {arr.shape}"
            )
        return arr

    def _write_slot(
        self,
        slot: int,
        key: np.ndarray,
        value: np.ndarray,
        token_position: int,
        is_heavy: bool,
    ) -> None:
        if token_position < 0:
            raise ValueError("token_position must be >= 0")
        self._table.write(
            slot, self._coerce(key, "key"), self._coerce(value, "value")
        )
        if self._occupied[slot]:
            self._pos_to_slot.pop(int(self._token_positions[slot]), None)
        self._occupied[slot] = True
        self._token_positions[slot] = int(token_position)
        self._is_heavy[slot] = bool(is_heavy)
        self._pos_to_slot[int(token_position)] = int(slot)
        self._writes += 1
        self._invalidate_views()

    def _invalidate_views(self) -> None:
        self._cached_slots = None
        self._cached_keys = None
        self._cached_values = None
        self._cached_positions = None


__all__ = ["SlotKVCache", "CacheEntry"]
