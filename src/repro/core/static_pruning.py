"""One-shot static pruning applied at the end of the prefill stage.

Paper Sec. III-A.1: after the prefill attention has been computed, the
accumulated attention score of every prompt token (summed over all queries
that attended to it) measures its importance for the rest of the
generation.  The ``H`` tokens with the highest accumulated scores are kept
("heavy" tokens, following H2O / SnapKV terminology) and everything else is
permanently dropped, which shrinks the KV cache footprint for the whole
decoding phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .attention import head_mean_scores, softmax


@dataclass(frozen=True)
class StaticPruningResult:
    """Outcome of the one-shot prefill pruning.

    Attributes
    ----------
    kept_positions:
        Token positions retained in the cache, in ascending position order.
    dropped_positions:
        Token positions permanently evicted.
    accumulated_scores:
        The accumulated attention score of every prompt token (full length,
        before pruning), used to seed the decoding-stage score table.
    """

    kept_positions: np.ndarray
    dropped_positions: np.ndarray
    accumulated_scores: np.ndarray

    @property
    def num_kept(self) -> int:
        return int(self.kept_positions.size)

    @property
    def num_dropped(self) -> int:
        return int(self.dropped_positions.size)

    @property
    def compression_ratio(self) -> float:
        total = self.num_kept + self.num_dropped
        if total == 0:
            return 1.0
        return self.num_kept / total


def accumulated_scores_from_attention(
    attention_matrix: np.ndarray,
    use_softmax: bool = True,
    causal: bool = True,
    observation_window: Optional[int] = None,
) -> np.ndarray:
    """Accumulated importance of each key token from a prefill attention map.

    Parameters
    ----------
    attention_matrix:
        Raw attention scores of shape ``[q, n]`` (queries x keys) or
        ``[h, q, n]`` for multi-head.  Scores are the pre-softmax dot
        products (Eq. 1).
    use_softmax:
        If true, each query row is softmax-normalised before accumulation
        (H2O-style probability mass).  If false the raw scores are summed —
        this is what the charge-domain hardware accumulates.
    causal:
        Apply a causal mask (query ``i`` only sees keys ``<= i``).  Assumes
        queries and keys cover the same token range when the matrix is
        square; for a rectangular matrix the last ``q`` positions are taken
        as the query positions.
    observation_window:
        If given, only the last ``observation_window`` query rows contribute
        (SnapKV-style observation window).  ``None`` uses every query.

    Returns
    -------
    np.ndarray
        Accumulated score per key token, shape ``[n]``.
    """
    attn = np.asarray(attention_matrix, dtype=np.float64)
    if attn.ndim == 2:
        attn = attn[None, :, :]
    if attn.ndim != 3:
        raise ValueError("attention_matrix must be [q, n] or [h, q, n]")
    num_heads, num_queries, num_keys = attn.shape

    if causal:
        query_positions = np.arange(num_keys - num_queries, num_keys)
        key_positions = np.arange(num_keys)
        visible = key_positions[None, :] <= query_positions[:, None]
        attn = np.where(visible[None, :, :], attn, -np.inf)

    if use_softmax:
        probs = softmax(attn, axis=-1)
    else:
        probs = np.where(np.isfinite(attn), attn, 0.0)

    if observation_window is not None:
        if observation_window < 1:
            raise ValueError("observation_window must be >= 1")
        probs = probs[:, -observation_window:, :]

    per_head = probs.sum(axis=1)  # [h, n]
    return head_mean_scores(per_head)


def select_heavy_tokens(
    accumulated_scores: np.ndarray,
    heavy_budget: int,
    sink_tokens: int = 0,
    recent_tokens: int = 0,
) -> StaticPruningResult:
    """Pick the ``heavy_budget`` tokens to retain after prefill.

    Protected tokens (the first ``sink_tokens`` attention sinks and the last
    ``recent_tokens`` positions) are always kept and count against the
    budget; the remaining budget goes to the highest accumulated scores.
    """
    scores = np.asarray(accumulated_scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("accumulated_scores must be 1-D")
    if heavy_budget < 1:
        raise ValueError("heavy_budget must be >= 1")
    n = scores.shape[0]
    if heavy_budget >= n:
        return StaticPruningResult(
            kept_positions=np.arange(n, dtype=np.int64),
            dropped_positions=np.empty(0, dtype=np.int64),
            accumulated_scores=scores.copy(),
        )

    protected = np.zeros(n, dtype=bool)
    if sink_tokens > 0:
        protected[: min(sink_tokens, n)] = True
    if recent_tokens > 0:
        protected[max(0, n - recent_tokens):] = True
    num_protected = int(protected.sum())

    if num_protected >= heavy_budget:
        # Budget fully consumed by protected tokens; keep the protected set
        # ranked by score until the budget is filled (sinks first).
        protected_idx = np.nonzero(protected)[0]
        order = np.lexsort((protected_idx, -scores[protected_idx]))
        kept = np.sort(protected_idx[order[:heavy_budget]])
    else:
        remaining = heavy_budget - num_protected
        candidate_idx = np.nonzero(~protected)[0]
        cand_scores = scores[candidate_idx]
        order = np.lexsort((candidate_idx, -cand_scores))
        chosen = candidate_idx[order[:remaining]]
        kept = np.sort(np.concatenate([np.nonzero(protected)[0], chosen]))

    dropped = np.setdiff1d(np.arange(n, dtype=np.int64), kept)
    return StaticPruningResult(
        kept_positions=kept.astype(np.int64),
        dropped_positions=dropped.astype(np.int64),
        accumulated_scores=scores.copy(),
    )


def prefill_static_prune(
    attention_matrix: np.ndarray,
    heavy_budget: int,
    use_softmax: bool = True,
    sink_tokens: int = 0,
    recent_tokens: int = 0,
    observation_window: Optional[int] = None,
) -> StaticPruningResult:
    """End-to-end one-shot static pruning from a prefill attention map."""
    scores = accumulated_scores_from_attention(
        attention_matrix,
        use_softmax=use_softmax,
        observation_window=observation_window,
    )
    return select_heavy_tokens(
        scores,
        heavy_budget=heavy_budget,
        sink_tokens=sink_tokens,
        recent_tokens=recent_tokens,
    )


def lowest_score_position(
    accumulated_scores: np.ndarray,
    candidate_positions: Sequence[int],
) -> int:
    """Position with the lowest accumulated score among the candidates.

    This is the step-wise static eviction rule used during decoding.  Ties
    are broken toward the earliest position (deterministic).
    """
    scores = np.asarray(accumulated_scores, dtype=np.float64)
    candidates = np.asarray(list(candidate_positions), dtype=np.int64)
    if candidates.size == 0:
        raise ValueError("candidate_positions must not be empty")
    cand_scores = scores[candidates]
    order = np.lexsort((candidates, cand_scores))
    return int(candidates[order[0]])


__all__ = [
    "StaticPruningResult",
    "accumulated_scores_from_attention",
    "select_heavy_tokens",
    "prefill_static_prune",
    "lowest_score_position",
]
