"""Per-page KV storage codecs: fp passthrough, int8 and packed int4.

The paper's core idea is that quantised keys are good enough to *select*
with; this module applies the same insight to *storage*.  A
:class:`PageCodec` owns the encode/decode seam of one
:class:`~repro.core.kv_pool.PagedKVPool` arena:

* :class:`FloatCodec` — passthrough at the pool's compute dtype.  This is
  the default and is bit-identical to the pre-codec arena (same arrays,
  same assignment semantics, no scale metadata).
* :class:`Int8Codec` — symmetric per-row, per-head absmax quantisation to
  signed 8-bit integers with a float32 scale per ``(row, head)``.
* :class:`Int4Codec` — the same scheme at 4 bits, with two values packed
  per byte (:func:`pack_int4` / :func:`unpack_int4`).

Quantisation is *deterministic* (pure function of the row), so a
copy-on-write split can copy raw bytes + scales without a decode/encode
round-trip, and two sequences adopting the same shared prefix page always
dequantise identical rows.

The symmetric absmax scheme is the storage-side analogue of
:func:`repro.core.dynamic_pruning.quantize_signed`: both map a real vector
onto ``2**bits - 1`` symmetric signed levels; the storage codec simply
remembers the scale so the mapping is invertible.  ``clip_sigma`` opts
into the same outlier clipping the CAM selector path uses (scale capped at
``clip_sigma`` standard deviations of the row) — tighter grids for
heavy-tailed rows at the cost of clipping the tails.

:class:`MixedPrecisionConfig` is the page-granular precision policy: the
first ``sink_pages`` blocks of every block table and the most recent
``recent_pages`` blocks stay full precision (the StreamingLLM/SnapKV
sink+recent insight applied to storage bytes); a block falling out of the
recent window is *demoted* — encoded into the quantised arena — exactly
once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class MixedPrecisionConfig:
    """Which pages of a quantised arena stay full precision.

    ``sink_pages``: blocks ``0..sink_pages-1`` of every block table (the
    attention-sink / prompt-prefix start) are stored at the pool's compute
    dtype forever.  ``recent_pages``: the highest ``recent_pages`` blocks a
    table has written stay full precision; when the write frontier moves
    past a block it is demoted (quantised in place).  Shared pages
    (refcount above one) are never demoted — sharers must keep reading
    identical rows.
    """

    sink_pages: int = 0
    recent_pages: int = 0

    def __post_init__(self) -> None:
        if self.sink_pages < 0 or self.recent_pages < 0:
            raise ValueError("sink_pages and recent_pages must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.sink_pages > 0 or self.recent_pages > 0


def pack_int4(q: np.ndarray) -> np.ndarray:
    """Pack signed 4-bit values in ``[-7, 7]`` two-per-byte (last axis).

    Each value is biased to the unsigned nibble ``q + 8`` (1..15; 8 is
    zero) and pairs ``(2i, 2i+1)`` land in one byte as ``high<<4 | low``.
    An odd final element is padded with the zero nibble.
    """
    q = np.asarray(q)
    if q.shape[-1] % 2:
        pad = np.zeros(q.shape[:-1] + (1,), dtype=q.dtype)
        q = np.concatenate([q, pad], axis=-1)
    biased = (q.astype(np.int16) + 8).astype(np.uint8)
    return (biased[..., 0::2] << 4) | biased[..., 1::2]


def unpack_int4(packed: np.ndarray, dim: int) -> np.ndarray:
    """Invert :func:`pack_int4` back to ``dim`` signed int8 values."""
    packed = np.asarray(packed, dtype=np.uint8)
    out = np.empty(packed.shape[:-1] + (2 * packed.shape[-1],), dtype=np.int8)
    out[..., 0::2] = (packed >> 4).astype(np.int8) - 8
    out[..., 1::2] = (packed & 0x0F).astype(np.int8) - 8
    return out[..., :dim]


class PageCodec:
    """Encode/decode seam between float K/V rows and arena storage bytes.

    A codec is stateless and geometry-agnostic: rows are ``[..., h, d]``
    float tensors, quantised storage is ``[..., h, packed_dim(d)]`` in
    :attr:`storage_dtype` with a :attr:`scale_dtype` scale per
    ``(..., h)``.  ``kv_row_bytes`` is the full K+V cost of storing one
    token row, *including* scale metadata, so byte budgets stay honest.
    """

    name: str = "abstract"
    is_float: bool = False
    scale_dtype = np.dtype(np.float32)

    def kv_row_bytes(self, num_heads: int, head_dim: int) -> int:
        raise NotImplementedError

    def packed_dim(self, head_dim: int) -> int:
        raise NotImplementedError

    @property
    def storage_dtype(self) -> np.dtype:
        raise NotImplementedError

    def encode(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantise float rows ``[..., h, d]`` -> ``(stored, scales)``."""
        raise NotImplementedError

    def decode(
        self,
        stored: np.ndarray,
        scales: np.ndarray,
        head_dim: int,
        out_dtype: np.dtype,
    ) -> np.ndarray:
        """Dequantise stored rows back to float ``[..., h, head_dim]``."""
        raise NotImplementedError


class FloatCodec(PageCodec):
    """Passthrough codec: the arena stores rows at the pool dtype."""

    is_float = True

    def __init__(self, dtype: np.dtype = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self.name = f"fp{8 * self.dtype.itemsize}"

    def kv_row_bytes(self, num_heads: int, head_dim: int) -> int:
        return int(2 * num_heads * head_dim * self.dtype.itemsize)

    def packed_dim(self, head_dim: int) -> int:
        return int(head_dim)

    @property
    def storage_dtype(self) -> np.dtype:
        return self.dtype


class _SymmetricIntCodec(PageCodec):
    """Shared absmax machinery of the int8 / int4 codecs."""

    bits: int = 8
    qmax: int = 127

    def __init__(self, clip_sigma: Optional[float] = None) -> None:
        if clip_sigma is not None and clip_sigma <= 0:
            raise ValueError("clip_sigma must be > 0 (or None)")
        self.clip_sigma = clip_sigma

    def _quantize(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim < 2:
            raise ValueError("rows must have shape [..., heads, dim]")
        amax = np.max(np.abs(rows), axis=-1)
        if self.clip_sigma is not None:
            limit = self.clip_sigma * rows.std(axis=-1)
            amax = np.where((limit > 0) & (limit < amax), limit, amax)
        scales = (amax / self.qmax).astype(self.scale_dtype)
        q = np.zeros_like(rows)
        wide = scales.astype(np.float64)[..., None]
        np.divide(rows, wide, out=q, where=wide > 0)
        q = np.clip(np.rint(q), -self.qmax, self.qmax).astype(np.int8)
        return q, scales

    def _dequantize(
        self, q: np.ndarray, scales: np.ndarray, out_dtype: np.dtype
    ) -> np.ndarray:
        out = q.astype(np.float64) * scales.astype(np.float64)[..., None]
        return out.astype(out_dtype, copy=False)


class Int8Codec(_SymmetricIntCodec):
    """Symmetric per-(row, head) absmax int8 storage (255 levels)."""

    name = "int8"
    bits = 8
    qmax = 127

    def kv_row_bytes(self, num_heads: int, head_dim: int) -> int:
        # K + V: one int8 per element plus one float32 scale per head.
        return int(2 * num_heads * (head_dim + self.scale_dtype.itemsize))

    def packed_dim(self, head_dim: int) -> int:
        return int(head_dim)

    @property
    def storage_dtype(self) -> np.dtype:
        return np.dtype(np.int8)

    def encode(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self._quantize(rows)

    def decode(self, stored, scales, head_dim, out_dtype):
        return self._dequantize(stored, scales, out_dtype)


class Int4Codec(_SymmetricIntCodec):
    """Symmetric absmax int4 storage, two values packed per byte (15 levels)."""

    name = "int4"
    bits = 4
    qmax = 7

    def kv_row_bytes(self, num_heads: int, head_dim: int) -> int:
        packed = math.ceil(head_dim / 2)
        return int(2 * num_heads * (packed + self.scale_dtype.itemsize))

    def packed_dim(self, head_dim: int) -> int:
        return int(math.ceil(head_dim / 2))

    @property
    def storage_dtype(self) -> np.dtype:
        return np.dtype(np.uint8)

    def encode(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        q, scales = self._quantize(rows)
        return pack_int4(q), scales

    def decode(self, stored, scales, head_dim, out_dtype):
        return self._dequantize(unpack_int4(stored, head_dim), scales, out_dtype)


CodecSpec = Union[None, str, PageCodec]

_QUANTIZED = {"int8": Int8Codec, "int4": Int4Codec}


def resolve_codec(spec: CodecSpec, dtype: np.dtype = np.float64) -> PageCodec:
    """Resolve a codec spec (name, instance or ``None``) to a :class:`PageCodec`.

    ``None``, ``"fp"`` and float-dtype names (``"fp64"``, ``"fp32"``,
    ``"float64"``, ...) give the passthrough :class:`FloatCodec` at
    ``dtype`` — the bit-identical default.  ``"int8"`` / ``"int4"`` give
    the quantised codecs; pass a constructed instance to set
    ``clip_sigma``.
    """
    if isinstance(spec, PageCodec):
        return spec
    if spec is None:
        return FloatCodec(dtype)
    name = str(spec).lower()
    if name in ("fp", "float", "fp64", "float64", "fp32", "float32"):
        if name in ("fp32", "float32"):
            return FloatCodec(np.float32)
        if name in ("fp64", "float64"):
            return FloatCodec(np.float64)
        return FloatCodec(dtype)
    try:
        return _QUANTIZED[name]()
    except KeyError:
        raise ValueError(
            f"unknown KV codec {spec!r}; expected one of "
            f"'fp', 'fp64', 'fp32', {', '.join(map(repr, _QUANTIZED))}"
        ) from None


__all__ = [
    "CodecSpec",
    "FloatCodec",
    "Int4Codec",
    "Int8Codec",
    "MixedPrecisionConfig",
    "PageCodec",
    "pack_int4",
    "resolve_codec",
    "unpack_int4",
]
