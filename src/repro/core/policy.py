"""Common interface for KV cache management policies.

Every pruning strategy in this library — the paper's hybrid static-dynamic
scheme (:class:`repro.core.hybrid.UniCAIMPolicy`) and the baselines it is
compared against (full cache, StreamingLLM, H2O, SnapKV, Quest-like) — is a
:class:`KVCachePolicy`.  The transformer substrate
(:mod:`repro.llm.attention_layer`) delegates the decoding-stage attention of
each head group to a policy instance, so the same model can be evaluated
under any policy by swapping one object.

Protocol
--------
1. ``prefill(keys, values, attention_matrix)`` is called once with the full
   prompt KV tensors (shape ``[n, h, d]``) and the prefill attention scores
   (shape ``[h, n, n]`` raw dot products).  The policy decides which prompt
   tokens to retain.
2. ``decode_step(query, key, value, position)`` is called for every
   generated token with the current query, the new token's key/value and its
   logical position.  The policy inserts the new KV pair (possibly evicting
   another), selects which cached tokens participate in attention, computes
   the sparse attention output and returns it together with bookkeeping
   information.

Paged storage
-------------
Every policy stores its K/V rows through the paged arena of
:mod:`repro.core.kv_pool`.  Standalone policies own private growable pools
(behaviourally identical to dense per-policy arrays); the serving engine
calls :meth:`KVCachePolicy.attach_pool` right after construction to rebind
a freshly built policy onto the engine's shared per-layer arena, which is
what lets sequences share pages (prefix reuse, on-demand allocation,
page-gated admission).  :meth:`release_kv` hands the pages back when the
sequence retires; :meth:`max_cached_tokens` / :meth:`max_kv_pages` bound a
request's lifetime page demand for admission control.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .attention import attention_output, causal_prefix_attention
from .group_decode import batched_group_attention, gather_group_kv
from .kv_pool import PagedKVPool, PagedKVStore, SharedKVPages


@dataclass
class StepRecord:
    """Bookkeeping for one decoding step, used by the evaluation harness."""

    position: int
    cache_size: int
    num_attended: int
    evicted_position: Optional[int] = None
    selected_positions: Optional[np.ndarray] = None


@dataclass
class PolicyStats:
    """Aggregate statistics accumulated over a generation."""

    prefill_tokens: int = 0
    retained_after_prefill: int = 0
    prefill_reused_tokens: int = 0
    decode_steps: int = 0
    total_attended: int = 0
    total_evictions: int = 0
    peak_cache_size: int = 0
    records: List[StepRecord] = field(default_factory=list)

    @property
    def mean_attended(self) -> float:
        if self.decode_steps == 0:
            return 0.0
        return self.total_attended / self.decode_steps

    @property
    def prefill_compression(self) -> float:
        if self.prefill_tokens == 0:
            return 1.0
        return self.retained_after_prefill / self.prefill_tokens

    def record(self, step: StepRecord) -> None:
        self.records.append(step)
        self.decode_steps += 1
        self.total_attended += step.num_attended
        if step.evicted_position is not None:
            self.total_evictions += 1
        self.peak_cache_size = max(self.peak_cache_size, step.cache_size)


@dataclass
class SpeculationState:
    """Staged (uncommitted) state of an in-flight speculative decode.

    Created by :meth:`KVCachePolicy.begin_speculation`, consumed by
    :meth:`KVCachePolicy.commit_speculation`.  ``positions`` are the
    staged rows' logical positions (ascending), ``records`` the
    :class:`StepRecord` each row *would* contribute if committed; backends
    stash any extra deferred side effects (e.g. H2O score-accumulation
    deltas) in ``extra``.
    """

    positions: List[int]
    records: List[StepRecord]
    extra: Optional[object] = None


class KVCachePolicy(ABC):
    """Abstract base class for KV cache pruning policies."""

    def __init__(self, num_heads: int, head_dim: int, scale: Optional[float] = None) -> None:
        if num_heads < 1 or head_dim < 1:
            raise ValueError("num_heads and head_dim must be >= 1")
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.scale = scale if scale is not None else 1.0 / float(head_dim) ** 0.5
        self.stats = PolicyStats()
        self.kv_pool: Optional[PagedKVPool] = None
        self._spec: Optional[SpeculationState] = None

    # -- required interface -------------------------------------------------
    @abstractmethod
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        """Ingest the prompt KV cache and apply any prefill-time pruning."""

    @abstractmethod
    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        """Process one generated token and return the attention output [h, d]."""

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """One *vectorized* decode step for a policy-homogeneous group.

        ``group`` holds the per-sequence policy instances of one decode
        span (``self`` is ``group[0]``); ``queries``/``keys``/``values``
        are the stacked per-sequence projections ``[S, h, d]`` and
        ``positions[s]`` the logical position of member ``s``'s new token.
        An override must be observably equivalent to ``S`` independent
        :meth:`decode_step` calls — same outputs, same stored rows, same
        :class:`PolicyStats` — it only batches the math, and must return
        ``None`` *before* mutating any member state if it cannot serve the
        group (the caller then falls back to the per-sequence loop).

        The base implementation returns ``None`` (no vectorized path), so
        policies without an override keep working through the loop; see
        :func:`repro.core.group_decode.supports_group_decode` for the
        subclass-safety rule applied by the dispatcher.
        """
        return None

    @abstractmethod
    def cached_positions(self) -> np.ndarray:
        """Logical positions currently held in the cache."""

    # -- paged-storage interface --------------------------------------------
    def attach_pool(self, pool: PagedKVPool) -> None:
        """Rebind this (still empty) policy's KV storage onto a shared arena.

        Must be called before the first ``prefill``; rebinding a policy
        that already stores tokens would orphan its pages.
        """
        if self.cache_size() > 0:
            raise RuntimeError(
                "attach_pool requires an empty policy (call it right after "
                "construction, before prefill)"
            )
        self.kv_pool = pool
        self._on_pool_attached(pool)

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        """Subclass hook: move the policy's storage onto ``pool``."""

    def release_kv(self) -> None:
        """Return every held pool page; stats stay valid after release."""

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Whether preemption may rebuild this policy by *re-prefilling*.

        When the serving engine preempts a sequence it releases every
        page and later resumes from nothing but token ids.  The fast
        resume path re-prefills ``prompt + generated_so_far`` as one
        prompt of ``resumed_len`` tokens; returning ``True`` asserts that
        this reconstructs — bit for bit — the cache and hidden states the
        policy would hold had it decoded those tokens one step at a
        time.  The model computes prefill hidden states with full dense
        causal attention, so the equivalence holds exactly when every
        pre-preemption decode step also attended to a complete cache:
        any eviction or sparse selection up to the preemption point (or,
        for score-accumulating policies, up to the worst-case
        ``final_len``) breaks it.  The default is ``False``: the engine
        then re-prefills only the prompt and *replays* the recorded
        tokens through the normal decode path — always exact, one step
        per token.
        """
        return False

    # -- speculative decoding -----------------------------------------------
    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Whether k-token speculative decode stays exact for this policy.

        The engine verifies a k-token draft chunk in one forward, then
        *rolls back* the rows of rejected drafts.  Returning ``True``
        certifies that :meth:`begin_speculation` +
        :meth:`commit_speculation` reproduce — bit for bit — the cache
        contents, attention outputs, accumulated scores and
        :class:`PolicyStats` that ``kept`` plain :meth:`decode_step` calls
        would have produced, for any ``kept``.  ``spec_end_len`` is the
        cache length if every draft were accepted; ``final_len`` the
        worst-case end-of-request length (score-accumulating policies must
        certify against it, exactly like :meth:`exact_resume_by_reprefill`).
        The default is ``False``: the engine then decodes this sequence one
        token at a time — always exact, never faster.
        """
        return False

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        """Stage ``k`` draft rows and return their attention outputs.

        ``queries``/``keys``/``values`` are ``[k, h, d]`` — the projections
        of the k-token verify chunk, whose rows occupy logical positions
        ``start_position .. start_position+k-1``.  Row ``i`` must attend
        exactly as a serial :meth:`decode_step` at that position would
        (cache = committed rows + staged rows ``0..i``); the output is
        ``[k, h, d]``.  K/V rows are written into the store (fresh pages /
        CoW splits allocate normally) but **nothing observable commits**:
        positions lists, stats and score tables are untouched until
        :meth:`commit_speculation` decides how many rows survive.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support speculative decode"
        )

    def commit_speculation(self, kept: int) -> int:
        """Commit the first ``kept`` staged rows, roll back the rest.

        Applies the deferred side effects (positions, :class:`PolicyStats`
        records, score accumulation) of rows ``0..kept-1`` in order, then
        truncates rows ``kept..k-1`` out of the store via
        :meth:`~repro.core.kv_pool.PagedKVStore.rollback_append` — freeing
        any page allocated purely for rejected drafts.  Returns the number
        of pool pages freed.  Idempotent / safe with no speculation in
        flight (returns 0), which is the engine's abort path when a verify
        forward dies mid-layer.
        """
        if self._spec is not None:  # pragma: no cover — overridden by backends
            raise NotImplementedError(
                f"{type(self).__name__} staged speculation without a commit"
            )
        return 0

    def decode_page_demand(self) -> int:
        """Pages the next ``decode_step`` could pull from the shared pool."""
        return 0

    def speculative_page_demand(self, chunk_len: int) -> int:
        """Pages a ``chunk_len``-row verify chunk could pull from the pool.

        Conservative tail-append bound: the first row pays
        :meth:`decode_page_demand` (allocation or CoW split of the current
        tail block), and the remaining rows cross at most
        ``ceil((chunk_len-1)/page_size)`` further page boundaries.  Certified
        backends only speculate while they are in their pure-append regime
        (no evictions yet), so the bound is tight there; a rare shortfall is
        caught by the engine's verify-abort safety net rather than
        corrupting the batch.
        """
        demand = self.decode_page_demand()
        if chunk_len > 1 and self.kv_pool is not None:
            demand += math.ceil((chunk_len - 1) / self.kv_pool.page_size)
        return demand

    def kv_pages_held(self) -> int:
        """Pool pages this policy's storage currently references."""
        return 0

    def kv_shared_pages(self) -> int:
        """Held pages shared with other tables (potential CoW splits)."""
        return 0

    def kv_resident_bytes(self) -> int:
        """Codec-true bytes of the pool pages this policy holds.

        Quantised arenas report quantised storage (scale metadata and any
        mixed-precision fp overlay included), so per-sequence memory
        telemetry matches what the byte budget actually pays.
        """
        return 0

    def remaining_kv_pages(
        self, prompt_len: int, max_new_tokens: int, page_size: int
    ) -> int:
        """Upper bound on pages this policy could still *allocate* from the
        pool over the rest of the request's lifetime.

        This is the allocated-so-far-aware form of :meth:`max_kv_pages`:
        pages already held no longer need covering (they are out of the
        free list), and every held *shared* page may cost one more
        allocation when a write copy-on-write splits it.  The serving
        scheduler keeps ``sum(remaining) <= free_pages`` per layer, which
        preserves the run-to-completion guarantee while reclaiming the
        slack of the admission-time worst case as sequences progress.
        """
        worst = self.max_kv_pages(prompt_len, max_new_tokens, page_size)
        return max(0, worst - self.kv_pages_held()) + self.kv_shared_pages()

    def prompt_page_run(self, length: int) -> Optional[SharedKVPages]:
        """Refcounted pool-page run holding prompt rows ``0..length-1``.

        Policies that retain the whole prompt verbatim in pool pages return
        a handle (with one owned reference per page) that the prefix cache
        can store *by reference* instead of writing a second paged copy;
        everyone else returns ``None``.
        """
        return None

    @property
    def adopts_prefix_pages(self) -> bool:
        """Whether ``prefill_precomputed`` can zero-copy adopt shared pages."""
        return False

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        """Upper bound on K/V rows this policy ever stores for one request.

        Includes any transient overshoot (insert-then-evict patterns).  The
        serving engine converts this into a page reservation at admission,
        which is what guarantees an admitted sequence can always complete
        without pool exhaustion.
        """
        return int(prompt_len) + int(max_new_tokens)

    def max_kv_pages(
        self, prompt_len: int, max_new_tokens: int, page_size: int
    ) -> int:
        """Page-count form of :meth:`max_cached_tokens`."""
        return math.ceil(
            self.max_cached_tokens(prompt_len, max_new_tokens) / int(page_size)
        )

    # -- shared helpers ------------------------------------------------------
    def prefill_precomputed(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
        reused_tokens: int = 0,
        prefix_pages: Optional[SharedKVPages] = None,
    ) -> None:
        """Prefill from K/V/scores computed outside the policy's own pass.

        This is the entry point of the batched padding-free prefill and the
        shared-prefix cache (:mod:`repro.serving.prefix_cache`): the caller
        supplies the full prompt's per-layer keys, values and scaled raw
        attention scores — of which the first ``reused_tokens`` rows were
        restored from a prefix cache rather than recomputed — and the policy
        applies exactly the same prefill-time pruning as :meth:`prefill`.
        The reuse count is recorded on :attr:`stats` for observability; it
        does not change any pruning decision.

        ``prefix_pages`` optionally hands over the shared pool pages holding
        those reused rows.  Policies whose prefill retains the whole prompt
        (``adopts_prefix_pages``) install the pages into their block table
        instead of copying the rows — storage-level zero-copy; all others
        ignore the handle and copy only what they retain.  Either way the
        stored values are identical, so generation is unchanged.
        """
        if reused_tokens < 0:
            raise ValueError("reused_tokens must be >= 0")
        self.prefill(keys, values, attention_matrix=attention_matrix)
        self.stats.prefill_reused_tokens = int(reused_tokens)

    def prefill_extend(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
        start: int = 0,
        final: bool = False,
        reused_tokens: int = 0,
        prefix_pages: Optional[SharedKVPages] = None,
    ) -> None:
        """Consume one chunk of an incrementally prefilled prompt.

        The chunked-prefill entry point: the caller hands over the
        *cumulative* prompt tensors after every chunk iteration — ``keys``/
        ``values`` of shape ``[m, h, d]`` and the scaled raw score block
        ``[h, m, m]`` covering every prompt token processed so far, of
        which rows ``start:`` are new since the previous call (``start`` is
        0 on the first call).  ``final`` marks the last chunk; only then is
        the prompt complete.

        The default defers all pruning to the final chunk and then runs the
        exact one-shot :meth:`prefill_precomputed`, so any policy is
        chunk-size-invariant *by construction* — selection that depends on
        whole-prompt statistics (H2O/SnapKV accumulated scores, UniCAIM
        heavy-token selection) cannot be applied per-chunk without
        re-deriving the one-shot result, and re-summing per chunk would
        reorder the floating-point accumulation.  Backends whose retention
        rule is chunk-local (full cache, Quest, StreamingLLM) override this
        to move rows into pool storage as each chunk lands.
        """
        if start < 0:
            raise ValueError("start must be >= 0")
        if not final:
            return
        self.prefill_precomputed(
            keys,
            values,
            attention_matrix=attention_matrix,
            reused_tokens=reused_tokens,
            prefix_pages=prefix_pages,
        )

    def cache_size(self) -> int:
        return int(self.cached_positions().size)

    def reset(self) -> None:
        """Discard all cached state (a fresh instance is usually simpler)."""
        self.stats = PolicyStats()

    def _check_prefill_shapes(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys)
        values = np.asarray(values)
        expected_tail = (self.num_heads, self.head_dim)
        if keys.ndim != 3 or keys.shape[1:] != expected_tail:
            raise ValueError(
                f"prefill keys must have shape [n, {self.num_heads}, {self.head_dim}]"
            )
        if values.shape != keys.shape:
            raise ValueError("prefill values must match keys shape")

    def _check_step_shapes(
        self, query: np.ndarray, key: np.ndarray, value: np.ndarray
    ) -> None:
        expected = (self.num_heads, self.head_dim)
        for name, tensor in (("query", query), ("key", key), ("value", value)):
            if np.asarray(tensor).shape != expected:
                raise ValueError(f"{name} must have shape {expected}")

    def _make_store(self) -> PagedKVStore:
        """A K/V store on the attached shared pool (or a private one)."""
        return PagedKVStore(self.num_heads, self.head_dim, pool=self.kv_pool)

    def _stage_speculative_rows(
        self,
        store: PagedKVStore,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> List[int]:
        """Write k draft K/V rows into ``store`` exactly as serial ``put``s.

        Returns the staged positions.  Stores that are still purely
        sequential take one :meth:`~repro.core.kv_pool.PagedKVStore.bulk_append`
        (page-span writes are bit-identical to the same rows written one at
        a time, CoW splits included); stores with recycled slots fall back
        to row-by-row ``put`` so the slot layout matches what k plain
        decode steps would have produced.
        """
        if self._spec is not None:
            raise RuntimeError("speculation already in flight (commit first)")
        staged = [int(start_position) + i for i in range(keys.shape[0])]
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if store.insertion_slots_are_sequential:
            try:
                store.bulk_append(staged, keys, values)
            except BaseException:
                # A failed span write (e.g. pool exhaustion mid-chunk) must
                # not leak draft rows: policies that read positions back off
                # the store would attend them as if they were committed.
                store.rollback_append([pos for pos in staged if pos in store])
                raise
            return staged
        written: List[int] = []
        try:
            for pos, key, value in zip(staged, keys, values):
                store.put(pos, key, value)
                written.append(pos)
        except BaseException:
            store.rollback_append(written)
            raise
        return staged

    def _rollback_speculative_rows(self, store: PagedKVStore, kept: int) -> int:
        """Drop staged rows past ``kept`` from ``store``; clear the staging.

        Returns pages freed.  The shared tail of every backend's
        :meth:`commit_speculation` (the backend applies its deferred
        bookkeeping for the kept rows first).
        """
        spec = self._spec
        self._spec = None
        if spec is None:
            return 0
        return store.rollback_append(spec.positions[kept:])

    def _dense_speculation(
        self,
        store: PagedKVStore,
        base_order: Sequence[int],
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
        insertion_ordered: bool = False,
    ) -> np.ndarray:
        """Staged dense-attention speculation shared by append-only backends.

        ``base_order`` is the position order the backend's serial
        ``decode_step`` gathers (insertion order for full cache / Quest,
        ascending for SnapKV / H2O, sinks+window for StreamingLLM) *before*
        the draft rows; staged positions are strictly larger, so row ``i``'s
        serial gather is exactly ``base_order + staged[:i+1]`` — one store
        gather up front, one batched
        :func:`~repro.core.attention.causal_prefix_attention` over the
        prefix slices, bit-identical to k serial steps.  A caller that
        *maintains* ``base_order`` as the store's insertion order may pass
        ``insertion_ordered=True`` to unlock the sequential-slot gather
        fast path.
        """
        queries = np.asarray(queries, dtype=np.float64)
        k = queries.shape[0]
        staged = self._stage_speculative_rows(
            store, np.asarray(keys), np.asarray(values), start_position
        )
        try:
            n0 = len(base_order)
            if (
                insertion_ordered
                and store.insertion_slots_are_sequential
                and n0 + k == len(store)
            ):
                # base_order + staged is the store's insertion order and no
                # slot was ever recycled, so the rows live in slots 0..n-1
                # verbatim — skip the per-position slot-map walk.
                all_k, all_v = store.block_table.gather(
                    np.arange(n0 + k, dtype=np.int64)
                )
            else:
                all_k, all_v = store.gather(list(base_order) + staged)
            outputs = causal_prefix_attention(
                queries, all_k, all_v, n0, scale=self.scale
            )
            records = [
                StepRecord(
                    position=staged[i], cache_size=n0 + i + 1,
                    num_attended=n0 + i + 1,
                )
                for i in range(k)
            ]
        except BaseException:
            store.rollback_append(staged)
            raise
        self._spec = SpeculationState(staged, records)
        return outputs


class WholePromptStoreMixin:
    """Shared storage behaviour of whole-prompt-retaining paged policies.

    Mixed into policies (full cache, Quest) that keep *every* prompt token
    verbatim in an append-only :class:`~repro.core.kv_pool.PagedKVStore`
    exposed as ``self._store`` with position bookkeeping in
    ``self._positions``.  Retention being the identity is what makes the
    whole surface shareable: one-shot and chunked prefill commit rows as
    they arrive (with zero-copy adoption of shared prefix pages), the
    remaining-page accounting only ever risks a copy-on-write split on the
    append tail block, and the stored prompt rows can be published to the
    prefix cache by reference (:meth:`prompt_page_run`).
    """

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        self._store = self._make_store()

    @property
    def adopts_prefix_pages(self) -> bool:
        return True

    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._load_prompt(keys, values, adopt=None)

    def prefill_precomputed(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
        reused_tokens: int = 0,
        prefix_pages: Optional[SharedKVPages] = None,
    ) -> None:
        if reused_tokens < 0:
            raise ValueError("reused_tokens must be >= 0")
        self._load_prompt(keys, values, adopt=prefix_pages)
        self.stats.prefill_reused_tokens = int(reused_tokens)

    def prefill_extend(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
        start: int = 0,
        final: bool = False,
        reused_tokens: int = 0,
        prefix_pages: Optional[SharedKVPages] = None,
    ) -> None:
        """Truly incremental: every chunk's rows go straight into the store.

        Retention is the identity, so each chunk can be committed as it
        lands — the final store content is position-for-position what the
        one-shot load produces.
        """
        if start < 0:
            raise ValueError("start must be >= 0")
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        if start == 0:
            self._store.clear()
            first = 0
            if (
                prefix_pages is not None
                and prefix_pages.length <= n
                and self._store.can_adopt(prefix_pages)
            ):
                self._store.adopt_prefix(prefix_pages)
                first = prefix_pages.length
            self._store.bulk_append(range(first, n), keys[first:], values[first:])
        else:
            self._store.bulk_append(range(start, n), keys[start:], values[start:])
        self._positions = list(range(n))
        self.stats.prefill_tokens = n
        self.stats.retained_after_prefill = n
        if final:
            self.stats.prefill_reused_tokens = int(reused_tokens)

    def _load_prompt(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        adopt: Optional[SharedKVPages],
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self._store.clear()
        start = 0
        if adopt is not None and adopt.length <= n and self._store.can_adopt(adopt):
            self._store.adopt_prefix(adopt)
            start = adopt.length
        self._store.bulk_append(range(start, n), keys[start:], values[start:])
        self._positions = list(range(n))
        self.stats.prefill_tokens = n
        self.stats.retained_after_prefill = n

    def cached_positions(self) -> np.ndarray:
        return np.asarray(self._positions, dtype=np.int64)

    def release_kv(self) -> None:
        self._store.release()
        self._positions = []

    def decode_page_demand(self) -> int:
        return self._store.append_page_demand()

    def kv_pages_held(self) -> int:
        return self._store.pages_held()

    def kv_shared_pages(self) -> int:
        return self._store.shared_page_count()

    def kv_resident_bytes(self) -> int:
        return self._store.resident_bytes()

    def remaining_kv_pages(
        self, prompt_len: int, max_new_tokens: int, page_size: int
    ) -> int:
        # Append-only: shared *full* prefix pages are never written, so the
        # only CoW risk is the partial block the next append lands in.
        worst = self.max_kv_pages(prompt_len, max_new_tokens, page_size)
        return (
            max(0, worst - self._store.pages_held())
            + self._store.append_cow_risk()
        )

    def prompt_page_run(self, length: int) -> Optional[SharedKVPages]:
        return self._store.share_prefix(length)

    def _group_insert_and_gather(self, keys, values, positions, group):
        """Commit each member's new K/V row, then gather the whole group.

        The writes stay per-member (each sequence's block table allocates /
        copy-on-write splits independently); the reads collapse into one
        padded :func:`~repro.core.group_decode.gather_group_kv` — a single
        arena gather when the group shares the engine's per-layer pool.
        """
        for policy, key, value, position in zip(group, keys, values, positions):
            policy._store.put(
                int(position),
                np.asarray(key, dtype=np.float64),
                np.asarray(value, dtype=np.float64),
            )
            policy._positions.append(int(position))
        tables = [policy._store.block_table for policy in group]
        slot_lists = []
        for policy in group:
            store = policy._store
            if store.insertion_slots_are_sequential:
                # ``_positions`` is the store's insertion order, so the
                # never-recycled store maps it onto slots 0..n-1 directly.
                slot_lists.append(
                    np.arange(len(policy._positions), dtype=np.int64)
                )
            else:
                slot_lists.append(store.slots_of(policy._positions))
        return gather_group_kv(tables, slot_lists)

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._positions = []


class FullCachePolicy(WholePromptStoreMixin, KVCachePolicy):
    """No pruning: every token is cached and attended to (dense attention).

    This is the accuracy upper bound ("full cache" curve in Fig. 13) and the
    cost upper bound ("no pruning" bars in Figs. 10-12).  K/V rows live in a
    paged store in insertion order (= position order); on a shared pool the
    policy zero-copy adopts prefix pages, since it retains the whole prompt
    verbatim.
    """

    def __init__(self, num_heads: int, head_dim: int, scale: Optional[float] = None) -> None:
        super().__init__(num_heads, head_dim, scale)
        self._store = self._make_store()
        self._positions: List[int] = []

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Always: full-cache decode *is* dense attention over a complete
        cache, which is exactly what a re-prefill recomputes."""
        return True

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        self._store.put(
            int(position),
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )
        self._positions.append(int(position))
        keys, values = self._store.gather(self._positions)
        output = attention_output(
            np.asarray(query, dtype=np.float64), keys, values, scale=self.scale
        )
        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=len(self._positions),
                num_attended=len(self._positions),
            )
        )
        return output

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized full-cache decode: every member attends to all of its
        cached tokens, so the span is one padded gather plus one batched
        masked attention call."""
        gathered_k, gathered_v, lengths, valid = self._group_insert_and_gather(
            keys, values, positions, group
        )
        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, _ = batched_group_attention(
            queries, gathered_k, gathered_v, valid, scales=scales
        )
        for policy, position, size in zip(group, positions, lengths):
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=int(size),
                    num_attended=int(size),
                )
            )
        return outputs

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Always: appending draft rows never evicts, and rollback is a
        pure tail truncation of the append-only store."""
        return True

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        return self._dense_speculation(
            self._store, self._positions, queries, keys, values,
            start_position, insertion_ordered=True,
        )

    def commit_speculation(self, kept: int) -> int:
        spec = self._spec
        if spec is None:
            return 0
        for position, record in zip(spec.positions[:kept], spec.records[:kept]):
            self._positions.append(position)
            self.stats.record(record)
        return self._rollback_speculative_rows(self._store, kept)


__all__ = [
    "KVCachePolicy",
    "FullCachePolicy",
    "PolicyStats",
    "SpeculationState",
    "StepRecord",
    "WholePromptStoreMixin",
]
