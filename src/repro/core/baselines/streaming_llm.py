"""StreamingLLM-style fixed-pattern KV cache pruning.

StreamingLLM (Xiao et al., 2023 — the paper's ref. [19]) keeps a small
number of initial "attention sink" tokens plus a sliding window of the most
recent tokens, regardless of content.  It is the canonical *static,
fixed-pattern* policy: cheap and memory-bounded, but it permanently loses
any information that falls outside the window, which is exactly the failure
mode the paper's Fig. 13 comparison highlights.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from ..attention import attention_output
from ..policy import KVCachePolicy, StepRecord


class StreamingLLMPolicy(KVCachePolicy):
    """Attention sinks + sliding recency window.

    Parameters
    ----------
    num_heads, head_dim:
        Attention geometry.
    sink_tokens:
        Number of initial prompt tokens always retained (the attention
        sinks; StreamingLLM uses 4).
    window:
        Number of most recent tokens retained.  The total cache size is
        bounded by ``sink_tokens + window``.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        sink_tokens: int = 4,
        window: int = 512,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if sink_tokens < 0:
            raise ValueError("sink_tokens must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.sink_tokens = int(sink_tokens)
        self.window = int(window)
        self._sinks: list[Tuple[int, np.ndarray, np.ndarray]] = []
        self._window: Deque[Tuple[int, np.ndarray, np.ndarray]] = deque(maxlen=window)

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        sink_tokens: int = 4,
        scale: Optional[float] = None,
    ) -> "StreamingLLMPolicy":
        """Build a policy whose total retained tokens equal ``budget``."""
        if budget < 2:
            raise ValueError("budget must be >= 2")
        sinks = min(sink_tokens, budget - 1)
        return cls(
            num_heads,
            head_dim,
            sink_tokens=sinks,
            window=budget - sinks,
            scale=scale,
        )

    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self.stats.prefill_tokens = n

        self._sinks = [
            (pos, keys[pos], values[pos])
            for pos in range(min(self.sink_tokens, n))
        ]
        self._window.clear()
        start = min(self.sink_tokens, n)
        for pos in range(start, n):
            self._window.append((pos, keys[pos], values[pos]))
        self.stats.retained_after_prefill = len(self._sinks) + len(self._window)

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        evicted: Optional[int] = None
        if len(self._window) == self._window.maxlen and self._window.maxlen > 0:
            evicted = int(self._window[0][0])
        self._window.append(
            (int(position), np.asarray(key, dtype=np.float64), np.asarray(value, dtype=np.float64))
        )

        entries = self._sinks + list(self._window)
        keys = np.stack([entry[1] for entry in entries], axis=0)
        values = np.stack([entry[2] for entry in entries], axis=0)
        output = attention_output(query, keys, values, scale=self.scale)

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=len(entries),
                num_attended=len(entries),
                evicted_position=evicted,
            )
        )
        return output

    def cached_positions(self) -> np.ndarray:
        positions = [entry[0] for entry in self._sinks] + [
            entry[0] for entry in self._window
        ]
        return np.asarray(positions, dtype=np.int64)

    def reset(self) -> None:
        super().reset()
        self._sinks = []
        self._window.clear()


__all__ = ["StreamingLLMPolicy"]
