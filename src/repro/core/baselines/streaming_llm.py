"""StreamingLLM-style fixed-pattern KV cache pruning.

StreamingLLM (Xiao et al., 2023 — the paper's ref. [19]) keeps a small
number of initial "attention sink" tokens plus a sliding window of the most
recent tokens, regardless of content.  It is the canonical *static,
fixed-pattern* policy: cheap and memory-bounded, but it permanently loses
any information that falls outside the window, which is exactly the failure
mode the paper's Fig. 13 comparison highlights.

K/V rows live in a :class:`~repro.core.kv_pool.PagedKVStore` (slots are
recycled as the window slides, so the store never outgrows
``sink_tokens + window`` rows — at most a handful of pool pages).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from ..attention import attention_output
from ..group_decode import batched_group_attention, gather_group_kv
from ..kv_pool import PagedKVPool, SharedKVPages
from ..policy import KVCachePolicy, StepRecord


class StreamingLLMPolicy(KVCachePolicy):
    """Attention sinks + sliding recency window.

    Parameters
    ----------
    num_heads, head_dim:
        Attention geometry.
    sink_tokens:
        Number of initial prompt tokens always retained (the attention
        sinks; StreamingLLM uses 4).
    window:
        Number of most recent tokens retained.  The total cache size is
        bounded by ``sink_tokens + window``.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        sink_tokens: int = 4,
        window: int = 512,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if sink_tokens < 0:
            raise ValueError("sink_tokens must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.sink_tokens = int(sink_tokens)
        self.window = int(window)
        self._store = self._make_store()
        self._sink_positions: List[int] = []
        self._window_positions: Deque[int] = deque()

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        sink_tokens: int = 4,
        scale: Optional[float] = None,
    ) -> "StreamingLLMPolicy":
        """Build a policy whose total retained tokens equal ``budget``."""
        if budget < 2:
            raise ValueError("budget must be >= 2")
        sinks = min(sink_tokens, budget - 1)
        return cls(
            num_heads,
            head_dim,
            sink_tokens=sinks,
            window=budget - sinks,
            scale=scale,
        )

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        self._store = self._make_store()

    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self.stats.prefill_tokens = n

        sinks = min(self.sink_tokens, n)
        self._sink_positions = list(range(sinks))
        window_start = max(sinks, n - self.window)
        self._window_positions = deque(range(window_start, n))

        kept = self._sink_positions + list(self._window_positions)
        self._store.clear()
        self._store.bulk_append(kept, keys[kept], values[kept])
        self.stats.retained_after_prefill = len(kept)

    def prefill_extend(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
        start: int = 0,
        final: bool = False,
        reused_tokens: int = 0,
        prefix_pages: Optional[SharedKVPages] = None,
    ) -> None:
        """Truly incremental: the sink/window selection is position-only, so
        the window slides per chunk.

        Tokens that fall out of the window are dropped *before* the chunk's
        new rows are stored, and rows already outside the final window are
        never stored at all — the store therefore never holds more than
        ``sink_tokens + window`` rows, matching the one-shot prefill's page
        footprint (and the admission reservation) at every chunk boundary.
        """
        if start < 0:
            raise ValueError("start must be >= 0")
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        if start == 0:
            self._store.clear()
            self._sink_positions = []
            self._window_positions = deque()

        sinks = min(self.sink_tokens, n)
        window_start = max(sinks, n - self.window)
        while self._window_positions and self._window_positions[0] < window_start:
            self._store.drop(self._window_positions.popleft())
        for pos in range(start, sinks):
            self._sink_positions.append(pos)
            self._store.put(pos, keys[pos], values[pos])
        for pos in range(max(start, window_start), n):
            self._window_positions.append(pos)
            self._store.put(pos, keys[pos], values[pos])

        if final:
            self.stats.prefill_tokens = n
            self.stats.retained_after_prefill = len(
                self._sink_positions
            ) + len(self._window_positions)
            self.stats.prefill_reused_tokens = int(reused_tokens)

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        evicted: Optional[int] = None
        if len(self._window_positions) == self.window:
            evicted = self._window_positions.popleft()
            self._store.drop(evicted)
        self._window_positions.append(int(position))
        self._store.put(
            int(position),
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )

        order = self._sink_positions + list(self._window_positions)
        keys, values = self._store.gather(order)
        output = attention_output(query, keys, values, scale=self.scale)

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=len(order),
                num_attended=len(order),
                evicted_position=evicted,
            )
        )
        return output

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized sink+window decode for a whole policy group.

        The drop-then-put window slide is pure index arithmetic per member
        (evict the window head iff the window is at capacity, append the
        new position); the expensive parts — the K/V reads and the masked
        softmax attention — collapse into one padded group gather and one
        batched attention call over ``[S, T_max]``.
        """
        evicted: List[Optional[int]] = []
        order_lists: List[List[int]] = []
        for policy, key, value, position in zip(group, keys, values, positions):
            victim: Optional[int] = None
            if len(policy._window_positions) == policy.window:
                victim = policy._window_positions.popleft()
                policy._store.drop(victim)
            policy._window_positions.append(int(position))
            policy._store.put(
                int(position),
                np.asarray(key, dtype=np.float64),
                np.asarray(value, dtype=np.float64),
            )
            evicted.append(victim)
            order_lists.append(
                policy._sink_positions + list(policy._window_positions)
            )
        tables = [policy._store.block_table for policy in group]
        slot_lists = [
            policy._store.slots_of(order)
            for policy, order in zip(group, order_lists)
        ]
        gathered_k, gathered_v, lengths, valid = gather_group_kv(
            tables, slot_lists
        )
        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, _ = batched_group_attention(
            np.asarray(queries, dtype=np.float64),
            gathered_k,
            gathered_v,
            valid,
            scales=scales,
        )
        for policy, position, size, victim in zip(
            group, positions, lengths, evicted
        ):
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=int(size),
                    num_attended=int(size),
                    evicted_position=victim,
                )
            )
        return outputs

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Exact iff the window cannot slide during the draft chunk: while
        every token up to ``spec_end_len`` fits inside sinks + window, each
        staged step is a pure append attending to the complete cache, so
        rollback is a tail truncation and the deferred window appends
        commit per kept row.  A slide mid-chunk would ``drop`` a window
        head that a rejected draft can never restore, so those lengths
        fall back to one-token decode."""
        return spec_end_len <= len(self._sink_positions) + self.window

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        base = self._sink_positions + list(self._window_positions)
        return self._dense_speculation(
            self._store, base, queries, keys, values, start_position
        )

    def commit_speculation(self, kept: int) -> int:
        spec = self._spec
        if spec is None:
            return 0
        for position, record in zip(spec.positions[:kept], spec.records[:kept]):
            self._window_positions.append(position)
            self.stats.record(record)
        return self._rollback_speculative_rows(self._store, kept)

    def cached_positions(self) -> np.ndarray:
        positions = self._sink_positions + list(self._window_positions)
        return np.asarray(positions, dtype=np.int64)

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Exact iff nothing was evicted before the preemption point: with
        all ``resumed_len`` tokens inside sinks + window, every decode step
        attended to the complete cache (dense), which is precisely what a
        re-prefill recomputes.  Retention is pure position arithmetic, so
        there is no score state that could drift; once a token has slid
        out of the window the generated tokens' hidden states depend on
        truncated attention and the sequence must replay instead."""
        return resumed_len <= self.sink_tokens + self.window

    def release_kv(self) -> None:
        self._store.release()
        self._sink_positions = []
        self._window_positions = deque()

    def decode_page_demand(self) -> int:
        return self._store.append_page_demand()

    def kv_pages_held(self) -> int:
        return self._store.pages_held()

    def kv_shared_pages(self) -> int:
        return self._store.shared_page_count()

    def kv_resident_bytes(self) -> int:
        return self._store.resident_bytes()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            self.sink_tokens + self.window,
        )

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._sink_positions = []
        self._window_positions = deque()


__all__ = ["StreamingLLMPolicy"]
