"""H2O-style heavy-hitter KV cache eviction.

H2O (Zhang et al., 2023 — the paper's ref. [7]) keeps a fixed budget of
"heavy hitter" tokens, chosen by accumulated softmax attention probability,
plus a window of recent tokens.  Eviction is *static*: once a token is
dropped it can never be attended to again, but unlike StreamingLLM the
choice of which token to drop is content-aware.  At every step all cached
tokens participate in attention (no dynamic top-k).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attention import attention_output, attention_scores, head_mean_scores, softmax
from ..group_decode import batched_group_attention, gather_group_kv
from ..kv_pool import PagedKVPool
from ..policy import KVCachePolicy, SpeculationState, StepRecord
from ..static_pruning import accumulated_scores_from_attention


class H2OPolicy(KVCachePolicy):
    """Heavy-hitter oracle eviction with a recent-token window.

    Parameters
    ----------
    heavy_budget:
        Number of heavy-hitter slots (chosen by accumulated attention
        probability).
    recent_budget:
        Number of most recent tokens that are always retained.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        heavy_budget: int = 256,
        recent_budget: int = 64,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if heavy_budget < 1:
            raise ValueError("heavy_budget must be >= 1")
        if recent_budget < 1:
            raise ValueError("recent_budget must be >= 1")
        self.heavy_budget = int(heavy_budget)
        self.recent_budget = int(recent_budget)
        self._store = self._make_store()
        self._accumulated: Dict[int, float] = {}

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        self._store = self._make_store()

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        recent_fraction: float = 0.25,
        scale: Optional[float] = None,
    ) -> "H2OPolicy":
        """Split a total budget into heavy and recent portions (H2O default 50/50 or 75/25)."""
        if budget < 2:
            raise ValueError("budget must be >= 2")
        recent = max(1, int(round(budget * recent_fraction)))
        heavy = max(1, budget - recent)
        return cls(num_heads, head_dim, heavy_budget=heavy, recent_budget=recent, scale=scale)

    @property
    def total_budget(self) -> int:
        return self.heavy_budget + self.recent_budget

    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self.stats.prefill_tokens = n

        if attention_matrix is not None:
            scores = accumulated_scores_from_attention(
                attention_matrix, use_softmax=True
            )
        else:
            scores = np.zeros(n, dtype=np.float64)

        # Decide evictions *before* touching storage: bulk-appending the
        # whole prompt and then shrinking would allocate
        # ceil(n / page_size) pool pages that a partially emptied store
        # never returns, blowing past the total_budget+1 page reservation
        # the serving engine admits this policy under.
        self._accumulated = {pos: float(scores[pos]) for pos in range(n)}
        kept = set(range(n))
        while len(kept) > self.total_budget:
            victim = self._choose_victim(kept, current_position=n - 1)
            kept.discard(victim)
            self._accumulated.pop(victim, None)
        kept_list = sorted(kept)
        self._store.clear()
        self._store.bulk_append(kept_list, keys[kept_list], values[kept_list])
        self.stats.retained_after_prefill = len(self._store)

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        position = int(position)
        self._store.put(
            position,
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )
        self._accumulated.setdefault(position, 0.0)

        positions = sorted(self._store.positions())
        keys, values = self._store.gather(positions)

        raw = head_mean_scores(attention_scores(query, keys, scale=self.scale))
        probs = softmax(raw)
        for idx, pos in enumerate(positions):
            self._accumulated[pos] += float(probs[idx])

        output = attention_output(query, keys, values, scale=self.scale)

        evicted = self._shrink_to_budget(current_position=position)

        self.stats.record(
            StepRecord(
                position=position,
                cache_size=len(self._store),
                num_attended=len(positions),
                evicted_position=evicted,
            )
        )
        return output

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized heavy-hitter decode for a whole policy group.

        One padded gather and one batched masked attention serve every
        member; the per-step score accumulation becomes a per-member
        vector add over the group's ``[S, T]`` softmax matrix, and the
        accumulated-score eviction becomes **one masked argmin over the
        group** (recent/padded entries masked to ``+inf``; rows are
        position-sorted, so argmin's first-minimum tie-break reproduces
        the serial earliest-position rule).
        """
        count = len(group)
        order_lists: List[List[int]] = []
        for policy, key, value, position in zip(group, keys, values, positions):
            position = int(position)
            policy._store.put(
                position,
                np.asarray(key, dtype=np.float64),
                np.asarray(value, dtype=np.float64),
            )
            policy._accumulated.setdefault(position, 0.0)
            # Insertions arrive in ascending position order (sorted prefill
            # + monotone decode), so the store's insertion order normally
            # *is* position order; Timsort degrades gracefully otherwise.
            order_lists.append(sorted(policy._store.positions()))
        tables = [policy._store.block_table for policy in group]
        slot_lists = [
            policy._store.slots_of(order)
            for policy, order in zip(group, order_lists)
        ]
        gathered_k, gathered_v, lengths, valid = gather_group_kv(
            tables, slot_lists
        )
        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, raw = batched_group_attention(
            np.asarray(queries, dtype=np.float64),
            gathered_k,
            gathered_v,
            valid,
            scales=scales,
        )

        # Accumulated-score update: head-mean scaled scores -> per-row
        # masked softmax -> one vector add per member.
        mean_scores = (raw * scales[:, None, None]).mean(axis=1)  # [S, T]
        probs = softmax(np.where(valid, mean_scores, -np.inf), axis=-1)
        t_max = int(valid.shape[1])
        pos_mat = np.full((count, t_max), np.iinfo(np.int64).max, dtype=np.int64)
        acc_mat = np.full((count, t_max), np.inf)
        for row, (policy, order) in enumerate(zip(group, order_lists)):
            size = len(order)
            accumulated = np.fromiter(
                map(policy._accumulated.__getitem__, order),
                dtype=np.float64,
                count=size,
            )
            accumulated += probs[row, :size]
            policy._accumulated.update(zip(order, accumulated.tolist()))
            pos_mat[row, :size] = order
            acc_mat[row, :size] = accumulated

        # Eviction: one masked argmin over the group's score tables.
        current = np.asarray([int(p) for p in positions])[:, None]
        recent = np.asarray([policy.recent_budget for policy in group])[:, None]
        candidates = valid & (pos_mat < current - recent + 1)
        all_recent = ~candidates.any(axis=1)
        candidates[all_recent] = valid[all_recent]
        victim_idx = np.argmin(np.where(candidates, acc_mat, np.inf), axis=1)
        evicted: List[Optional[int]] = []
        for row, policy in enumerate(group):
            victim: Optional[int] = None
            if len(policy._store) > policy.total_budget:
                victim = int(pos_mat[row, victim_idx[row]])
                policy._store.drop(victim)
                policy._accumulated.pop(victim, None)
                if len(policy._store) > policy.total_budget:
                    # Defensive: one insert can only overshoot by one, but
                    # keep the serial shrink semantics exact regardless.
                    more = policy._shrink_to_budget(int(positions[row]))
                    if more is not None:
                        victim = more
            evicted.append(victim)

        for policy, position, size, victim in zip(
            group, positions, lengths, evicted
        ):
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=len(policy._store),
                    num_attended=int(size),
                    evicted_position=victim,
                )
            )
        return outputs

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Same condition as :meth:`exact_resume_by_reprefill`: while the
        whole generation stays within ``heavy_budget + recent_budget`` H2O
        never evicts and the accumulated-score table is never *consulted*,
        so the per-row score deltas of a draft chunk can be staged and
        applied exactly for the kept rows (in serial summation order) and
        discarded for rejected ones.  Past the budget the scores decide an
        eviction mid-speculation, which cannot be rolled back."""
        return final_len <= self.heavy_budget + self.recent_budget

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        k = queries.shape[0]
        base = sorted(self._store.positions())
        staged = self._stage_speculative_rows(
            self._store, np.asarray(keys), np.asarray(values), start_position
        )
        all_k, all_v = self._store.gather(base + staged)
        outputs = np.empty((k, self.num_heads, self.head_dim), dtype=np.float64)
        records = []
        score_updates = []
        n0 = len(base)
        for i in range(k):
            n = n0 + i + 1
            order = base + staged[: i + 1]
            raw = head_mean_scores(
                attention_scores(queries[i], all_k[:n], scale=self.scale)
            )
            probs = softmax(raw)
            score_updates.append((order, probs))
            outputs[i] = attention_output(
                queries[i], all_k[:n], all_v[:n], scale=self.scale
            )
            records.append(
                StepRecord(position=staged[i], cache_size=n, num_attended=n)
            )
        self._spec = SpeculationState(staged, records, extra=score_updates)
        return outputs

    def commit_speculation(self, kept: int) -> int:
        spec = self._spec
        if spec is None:
            return 0
        for i in range(kept):
            # Replays the serial decode_step's mutation sequence exactly:
            # setdefault the new position, then one float add per attended
            # position in gather order.
            self._accumulated.setdefault(spec.positions[i], 0.0)
            order, probs = spec.extra[i]
            for idx, pos in enumerate(order):
                self._accumulated[pos] += float(probs[idx])
            self.stats.record(spec.records[i])
        return self._rollback_speculative_rows(self._store, kept)

    def cached_positions(self) -> np.ndarray:
        return np.asarray(sorted(self._store.positions()), dtype=np.int64)

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Conditional on the *final* length: while the whole generation
        stays within ``heavy_budget + recent_budget`` H2O never evicts,
        every decode step attends to the complete cache (dense), and the
        accumulated-score table is never consulted.  Past the budget the
        scores decide evictions — and a re-prefill accumulates them in a
        different floating-point summation order (one matrix reduction)
        than step-by-step decode does, so eviction choices could drift by
        an ulp.  Those sequences replay instead."""
        return final_len <= self.heavy_budget + self.recent_budget

    def release_kv(self) -> None:
        self._store.release()
        self._accumulated = {}

    def decode_page_demand(self) -> int:
        return self._store.append_page_demand()

    def kv_pages_held(self) -> int:
        return self._store.pages_held()

    def kv_shared_pages(self) -> int:
        return self._store.shared_page_count()

    def kv_resident_bytes(self) -> int:
        return self._store.resident_bytes()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        # +1 for the insert-then-shrink transient of every decode step.
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            self.total_budget + 1,
        )

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._accumulated = {}

    # ------------------------------------------------------------------
    def _choose_victim(self, positions, current_position: int) -> int:
        """Lowest-accumulated-score non-recent position (H2O's rule).

        Falls back to the full candidate set when every cached token is
        recent; ties break toward the earliest position.
        """
        recent_threshold = current_position - self.recent_budget + 1
        candidates = [p for p in positions if p < recent_threshold]
        if not candidates:
            candidates = list(positions)
        return min(candidates, key=lambda p: (self._accumulated.get(p, 0.0), p))

    def _shrink_to_budget(self, current_position: int) -> Optional[int]:
        """Evict lowest-accumulated-score non-recent tokens until within budget.

        Returns the last evicted position (or ``None``).
        """
        last_evicted: Optional[int] = None
        while len(self._store) > self.total_budget:
            victim = self._choose_victim(
                self._store.positions(), current_position
            )
            self._store.drop(victim)
            self._accumulated.pop(victim, None)
            last_evicted = victim
        return last_evicted


__all__ = ["H2OPolicy"]
