"""H2O-style heavy-hitter KV cache eviction.

H2O (Zhang et al., 2023 — the paper's ref. [7]) keeps a fixed budget of
"heavy hitter" tokens, chosen by accumulated softmax attention probability,
plus a window of recent tokens.  Eviction is *static*: once a token is
dropped it can never be attended to again, but unlike StreamingLLM the
choice of which token to drop is content-aware.  At every step all cached
tokens participate in attention (no dynamic top-k).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..attention import attention_output, attention_scores, head_mean_scores, softmax
from ..kv_pool import PagedKVPool
from ..policy import KVCachePolicy, StepRecord
from ..static_pruning import accumulated_scores_from_attention


class H2OPolicy(KVCachePolicy):
    """Heavy-hitter oracle eviction with a recent-token window.

    Parameters
    ----------
    heavy_budget:
        Number of heavy-hitter slots (chosen by accumulated attention
        probability).
    recent_budget:
        Number of most recent tokens that are always retained.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        heavy_budget: int = 256,
        recent_budget: int = 64,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if heavy_budget < 1:
            raise ValueError("heavy_budget must be >= 1")
        if recent_budget < 1:
            raise ValueError("recent_budget must be >= 1")
        self.heavy_budget = int(heavy_budget)
        self.recent_budget = int(recent_budget)
        self._store = self._make_store()
        self._accumulated: Dict[int, float] = {}

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        self._store = self._make_store()

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        recent_fraction: float = 0.25,
        scale: Optional[float] = None,
    ) -> "H2OPolicy":
        """Split a total budget into heavy and recent portions (H2O default 50/50 or 75/25)."""
        if budget < 2:
            raise ValueError("budget must be >= 2")
        recent = max(1, int(round(budget * recent_fraction)))
        heavy = max(1, budget - recent)
        return cls(num_heads, head_dim, heavy_budget=heavy, recent_budget=recent, scale=scale)

    @property
    def total_budget(self) -> int:
        return self.heavy_budget + self.recent_budget

    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self.stats.prefill_tokens = n

        if attention_matrix is not None:
            scores = accumulated_scores_from_attention(
                attention_matrix, use_softmax=True
            )
        else:
            scores = np.zeros(n, dtype=np.float64)

        # Decide evictions *before* touching storage: bulk-appending the
        # whole prompt and then shrinking would allocate
        # ceil(n / page_size) pool pages that a partially emptied store
        # never returns, blowing past the total_budget+1 page reservation
        # the serving engine admits this policy under.
        self._accumulated = {pos: float(scores[pos]) for pos in range(n)}
        kept = set(range(n))
        while len(kept) > self.total_budget:
            victim = self._choose_victim(kept, current_position=n - 1)
            kept.discard(victim)
            self._accumulated.pop(victim, None)
        kept_list = sorted(kept)
        self._store.clear()
        self._store.bulk_append(kept_list, keys[kept_list], values[kept_list])
        self.stats.retained_after_prefill = len(self._store)

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        position = int(position)
        self._store.put(
            position,
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )
        self._accumulated.setdefault(position, 0.0)

        positions = sorted(self._store.positions())
        keys, values = self._store.gather(positions)

        raw = head_mean_scores(attention_scores(query, keys, scale=self.scale))
        probs = softmax(raw)
        for idx, pos in enumerate(positions):
            self._accumulated[pos] += float(probs[idx])

        output = attention_output(query, keys, values, scale=self.scale)

        evicted = self._shrink_to_budget(current_position=position)

        self.stats.record(
            StepRecord(
                position=position,
                cache_size=len(self._store),
                num_attended=len(positions),
                evicted_position=evicted,
            )
        )
        return output

    def cached_positions(self) -> np.ndarray:
        return np.asarray(sorted(self._store.positions()), dtype=np.int64)

    def release_kv(self) -> None:
        self._store.release()
        self._accumulated = {}

    def decode_page_demand(self) -> int:
        return self._store.append_page_demand()

    def kv_pages_held(self) -> int:
        return self._store.pages_held()

    def kv_shared_pages(self) -> int:
        return self._store.shared_page_count()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        # +1 for the insert-then-shrink transient of every decode step.
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            self.total_budget + 1,
        )

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._accumulated = {}

    # ------------------------------------------------------------------
    def _choose_victim(self, positions, current_position: int) -> int:
        """Lowest-accumulated-score non-recent position (H2O's rule).

        Falls back to the full candidate set when every cached token is
        recent; ties break toward the earliest position.
        """
        recent_threshold = current_position - self.recent_budget + 1
        candidates = [p for p in positions if p < recent_threshold]
        if not candidates:
            candidates = list(positions)
        return min(candidates, key=lambda p: (self._accumulated.get(p, 0.0), p))

    def _shrink_to_budget(self, current_position: int) -> Optional[int]:
        """Evict lowest-accumulated-score non-recent tokens until within budget.

        Returns the last evicted position (or ``None``).
        """
        last_evicted: Optional[int] = None
        while len(self._store) > self.total_budget:
            victim = self._choose_victim(
                self._store.positions(), current_position
            )
            self._store.drop(victim)
            self._accumulated.pop(victim, None)
            last_evicted = victim
        return last_evicted


__all__ = ["H2OPolicy"]
