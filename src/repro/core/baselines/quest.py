"""Quest-style dynamic-only query-aware sparse attention.

Quest (Tang et al., 2024 — the paper's ref. [6]) keeps the *entire* KV cache
resident but, at every decoding step, estimates which pages of the cache the
current query will attend to and computes exact attention only over the
selected pages.  It is the canonical *dynamic-only* policy: computation is
reduced but the memory footprint is not, which is the other half of the
trade-off the paper's hybrid scheme closes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..attention import (
    head_mean_scores,
    sparse_attention_output,
    top_k_indices,
)
from ..group_decode import batched_group_attention
from ..policy import (
    KVCachePolicy,
    SpeculationState,
    StepRecord,
    WholePromptStoreMixin,
)


class QuestPolicy(WholePromptStoreMixin, KVCachePolicy):
    """Page-based dynamic top-k selection over an unpruned cache.

    Parameters
    ----------
    page_size:
        Number of consecutive tokens per page.  Page importance is scored
        with the per-page element-wise min/max key bounds as in Quest; pages
        are selected, then every token of every selected page is attended.
        Bounds are computed on the fly from gathered keys, so under a
        quantised storage codec they are bounds over the *dequantised*
        rows — exactly the rows attention later reads, keeping selection
        and attention mutually consistent at any precision.
    num_pages:
        Number of pages selected per step.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        page_size: int = 16,
        num_pages: int = 8,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if num_pages < 1:
            raise ValueError("num_pages must be >= 1")
        self.page_size = int(page_size)
        self.num_pages = int(num_pages)
        self._store = self._make_store()
        self._positions: List[int] = []

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        page_size: int = 16,
        scale: Optional[float] = None,
    ) -> "QuestPolicy":
        """Select enough pages to cover roughly ``budget`` tokens per step."""
        pages = max(1, budget // page_size)
        return cls(
            num_heads,
            head_dim,
            page_size=page_size,
            num_pages=pages,
            scale=scale,
        )

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """Quest's page selection is stateless (a fresh top-pages pick per
        step from the stored K/V), so resume is exact whenever every
        pre-preemption decode step covered *all* pages — i.e. the cache at
        ``resumed_len`` tokens still fits within ``num_pages`` selected
        pages, making the selection the identity and the attention dense.
        Once selection truncates, generated tokens' hidden states depend
        on sparse attention and the sequence must replay."""
        return math.ceil(resumed_len / self.page_size) <= self.num_pages

    # ------------------------------------------------------------------
    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        self._store.put(
            int(position),
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )
        self._positions.append(int(position))

        keys, values = self._store.gather(self._positions)
        n = keys.shape[0]

        selected = self._select_page_tokens(query, keys)
        output = sparse_attention_output(
            query, keys, values, selected, scale=self.scale
        )

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=n,
                num_attended=int(selected.size),
                selected_positions=np.asarray(
                    [self._positions[i] for i in selected], dtype=np.int64
                ),
            )
        )
        return output

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Always: Quest keeps every row and re-picks pages statelessly
        per step from the stored K/V, so the per-row selection over each
        staged prefix reproduces the serial step exactly and rollback is a
        pure tail truncation of the append-only store."""
        return True

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        k = queries.shape[0]
        base = list(self._positions)
        staged = self._stage_speculative_rows(
            self._store, np.asarray(keys), np.asarray(values), start_position
        )
        all_k, all_v = self._store.gather(base + staged)
        outputs = np.empty((k, self.num_heads, self.head_dim), dtype=np.float64)
        records = []
        n0 = len(base)
        for i in range(k):
            n = n0 + i + 1
            order = base + staged[: i + 1]
            selected = self._select_page_tokens(queries[i], all_k[:n])
            outputs[i] = sparse_attention_output(
                queries[i], all_k[:n], all_v[:n], selected, scale=self.scale
            )
            records.append(
                StepRecord(
                    position=staged[i],
                    cache_size=n,
                    num_attended=int(selected.size),
                    selected_positions=np.asarray(
                        [order[j] for j in selected], dtype=np.int64
                    ),
                )
            )
        self._spec = SpeculationState(staged, records)
        return outputs

    def commit_speculation(self, kept: int) -> int:
        spec = self._spec
        if spec is None:
            return 0
        for position, record in zip(spec.positions[:kept], spec.records[:kept]):
            self._positions.append(position)
            self.stats.record(record)
        return self._rollback_speculative_rows(self._store, kept)

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized query-aware decode for a whole policy group.

        One padded gather serves every member; when the group shares a
        page size, the Quest bounding-box criticality of **all** members'
        pages is computed as one ``[S, pages]`` score tensor (element-wise
        min/max page bounds over the padded keys, then the upper-bound
        reduction) before each member's deterministic top-k pick.  The
        sparse attention over the selected tokens runs as one batched
        masked call — unselected and padded entries score ``-inf`` so
        their softmax weight is exactly zero, matching the serial
        gather-the-subset computation.
        """
        queries = np.asarray(queries, dtype=np.float64)
        gathered_k, gathered_v, lengths, valid = self._group_insert_and_gather(
            keys, values, positions, group
        )
        count, t_max = valid.shape
        keys64 = np.asarray(gathered_k, dtype=np.float64)

        page_sizes = {policy.page_size for policy in group}
        page_scores = None
        if len(page_sizes) == 1:
            page_scores = self._group_page_scores(
                queries, keys64, lengths, valid, page_sizes.pop()
            )

        select = valid.copy()
        selections: List[np.ndarray] = []
        for row, policy in enumerate(group):
            size = int(lengths[row])
            if page_scores is None:
                # Heterogeneous page sizes: per-member page ranking on the
                # member's slice (the gather and attention stay batched).
                selected = policy._select_page_tokens(
                    queries[row], keys64[row, :size]
                )
            else:
                selected = policy._pick_pages(page_scores[row], size)
            selections.append(selected)
            if selected.size != size:
                select[row] = False
                select[row, selected] = True

        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, _ = batched_group_attention(
            queries, gathered_k, gathered_v, select, scales=scales
        )
        for policy, position, size, selected in zip(
            group, positions, lengths, selections
        ):
            stored = np.asarray(policy._positions, dtype=np.int64)
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=int(size),
                    num_attended=int(selected.size),
                    selected_positions=stored[selected],
                )
            )
        return outputs

    def _group_page_scores(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        lengths: np.ndarray,
        valid: np.ndarray,
        page_size: int,
    ) -> np.ndarray:
        """Quest upper-bound criticality of every member's pages at once.

        Padded key rows are masked to ``+/-inf`` so partial pages keep the
        exact per-member min/max bounds; fully padded pages produce
        non-finite garbage that the caller never reads (every member picks
        only among its own ``ceil(n / page_size)`` real pages).
        """
        count, t_max = valid.shape
        num_pages = math.ceil(t_max / page_size)
        pad = num_pages * page_size - t_max
        row_mask = valid[:, :, None, None]
        kmin = np.where(row_mask, keys, np.inf)
        kmax = np.where(row_mask, keys, -np.inf)
        if pad:
            tail_shape = (count, pad) + keys.shape[2:]
            kmin = np.concatenate(
                [kmin, np.full(tail_shape, np.inf)], axis=1
            )
            kmax = np.concatenate(
                [kmax, np.full(tail_shape, -np.inf)], axis=1
            )
        bound_shape = (count, num_pages, page_size) + keys.shape[2:]
        mins = kmin.reshape(bound_shape).min(axis=2)  # [S, P, h, d]
        maxs = kmax.reshape(bound_shape).max(axis=2)
        with np.errstate(invalid="ignore"):
            upper = np.maximum(
                queries[:, None] * mins, queries[:, None] * maxs
            )
            return upper.sum(axis=-1).mean(axis=-1)  # [S, P]

    def _pick_pages(self, page_scores: np.ndarray, n: int) -> np.ndarray:
        """Token indices selected from one member's page-score row."""
        num_pages = math.ceil(n / self.page_size)
        if num_pages <= self.num_pages:
            return np.arange(n, dtype=np.int64)
        chosen_pages = top_k_indices(page_scores[:num_pages], self.num_pages)
        chosen = set(int(p) for p in chosen_pages)
        chosen.add(num_pages - 1)
        selected = np.concatenate(
            [
                np.arange(
                    p * self.page_size, min((p + 1) * self.page_size, n)
                )
                for p in sorted(chosen)
            ]
        )
        return np.sort(selected).astype(np.int64)

    # ------------------------------------------------------------------
    def _page_bounds(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
        """Per-page element-wise min/max key bounds and the member indices."""
        n = keys.shape[0]
        page_indices: List[np.ndarray] = []
        mins = []
        maxs = []
        for start in range(0, n, self.page_size):
            members = np.arange(start, min(start + self.page_size, n))
            page_indices.append(members)
            mins.append(keys[members].min(axis=0))
            maxs.append(keys[members].max(axis=0))
        return np.stack(mins, axis=0), np.stack(maxs, axis=0), page_indices

    def _select_page_tokens(self, query: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Select token indices from the top pages by Quest's upper-bound score."""
        mins, maxs, page_indices = self._page_bounds(keys)
        num_pages = len(page_indices)
        if num_pages <= self.num_pages:
            return np.arange(keys.shape[0], dtype=np.int64)

        # Quest criticality: upper bound of q . k over the page's bounding
        # box is sum over dims of max(q_i * min_i, q_i * max_i).
        upper_per_dim = np.maximum(
            query[None, ...] * mins, query[None, ...] * maxs
        )  # [pages, h, d]
        page_scores = head_mean_scores(
            upper_per_dim.sum(axis=-1).transpose(1, 0)
        )
        chosen_pages = top_k_indices(page_scores, self.num_pages)
        # Always include the newest page so the current token attends to itself.
        chosen = set(int(p) for p in chosen_pages)
        chosen.add(num_pages - 1)
        selected = np.concatenate([page_indices[p] for p in sorted(chosen)])
        return np.sort(selected).astype(np.int64)


__all__ = ["QuestPolicy"]
