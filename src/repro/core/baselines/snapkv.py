"""SnapKV-style prefill-only KV cache compression.

SnapKV (Li et al., 2024 — the paper's ref. [8]) observes that the final
span of the prompt ("observation window") predicts which earlier tokens the
generation will attend to.  It compresses the prompt KV cache *once*, at
the end of prefill, by keeping the tokens that receive the most attention
from the observation-window queries (after a smoothing pool over
neighbouring positions), plus the observation window itself.  During
decoding nothing further is evicted: the cache grows with every generated
token and all cached tokens are attended to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..attention import attention_output
from ..group_decode import batched_group_attention, gather_group_kv
from ..kv_pool import PagedKVPool
from ..policy import KVCachePolicy, StepRecord
from ..static_pruning import accumulated_scores_from_attention


def pool_scores(scores: np.ndarray, kernel_size: int = 5) -> np.ndarray:
    """Average-pool importance scores over neighbouring token positions.

    SnapKV applies a 1-D pooling over the per-token attention mass so that
    clusters of important tokens are kept together instead of isolated
    spikes.  A simple same-length moving average reproduces that behaviour.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("scores must be 1-D")
    if kernel_size < 1:
        raise ValueError("kernel_size must be >= 1")
    if kernel_size == 1 or scores.size == 0:
        return scores.copy()
    kernel = np.ones(kernel_size, dtype=np.float64) / kernel_size
    padded = np.pad(scores, (kernel_size // 2, kernel_size - 1 - kernel_size // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


class SnapKVPolicy(KVCachePolicy):
    """Observation-window prefill compression, no decode-time eviction.

    Parameters
    ----------
    prompt_budget:
        Number of prompt tokens retained after compression (includes the
        observation window).
    observation_window:
        Number of final prompt queries used to score earlier tokens.
    pool_kernel:
        Width of the smoothing pool applied to the scores.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        prompt_budget: int = 512,
        observation_window: int = 32,
        pool_kernel: int = 5,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__(num_heads, head_dim, scale)
        if prompt_budget < 1:
            raise ValueError("prompt_budget must be >= 1")
        if observation_window < 1:
            raise ValueError("observation_window must be >= 1")
        if pool_kernel < 1:
            raise ValueError("pool_kernel must be >= 1")
        self.prompt_budget = int(prompt_budget)
        self.observation_window = int(observation_window)
        self.pool_kernel = int(pool_kernel)
        self._store = self._make_store()
        self._kept_prompt_positions: List[int] = []

    def _on_pool_attached(self, pool: PagedKVPool) -> None:
        self._store = self._make_store()

    @classmethod
    def from_budget(
        cls,
        num_heads: int,
        head_dim: int,
        budget: int,
        observation_window: int = 32,
        scale: Optional[float] = None,
    ) -> "SnapKVPolicy":
        window = min(observation_window, max(1, budget // 4))
        return cls(
            num_heads,
            head_dim,
            prompt_budget=budget,
            observation_window=window,
            scale=scale,
        )

    # ------------------------------------------------------------------
    def prefill(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        attention_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self._check_prefill_shapes(keys, values)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = keys.shape[0]
        self.stats.prefill_tokens = n

        window = min(self.observation_window, n)
        window_positions = list(range(n - window, n))

        if self.prompt_budget >= n:
            kept = list(range(n))
        else:
            if attention_matrix is not None:
                scores = accumulated_scores_from_attention(
                    attention_matrix,
                    use_softmax=True,
                    observation_window=window,
                )
            else:
                scores = np.zeros(n, dtype=np.float64)
            pooled = pool_scores(scores, self.pool_kernel)
            # Observation window is always kept; fill the rest of the budget
            # with the highest pooled scores outside the window.
            remaining_budget = max(0, self.prompt_budget - window)
            candidates = np.asarray(
                [p for p in range(n) if p not in set(window_positions)],
                dtype=np.int64,
            )
            cand_scores = pooled[candidates]
            order = np.lexsort((candidates, -cand_scores))
            chosen = candidates[order[:remaining_budget]]
            kept = sorted(set(window_positions) | set(int(p) for p in chosen))

        self._store.clear()
        kept = list(kept)
        self._store.bulk_append(kept, keys[kept], values[kept])
        self._kept_prompt_positions = list(kept)
        self.stats.retained_after_prefill = len(kept)

    def decode_step(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        position: int,
    ) -> np.ndarray:
        self._check_step_shapes(query, key, value)
        query = np.asarray(query, dtype=np.float64)
        position = int(position)
        self._store.put(
            position,
            np.asarray(key, dtype=np.float64),
            np.asarray(value, dtype=np.float64),
        )

        positions = sorted(self._store.positions())
        keys, values = self._store.gather(positions)
        output = attention_output(query, keys, values, scale=self.scale)

        self.stats.record(
            StepRecord(
                position=position,
                cache_size=len(positions),
                num_attended=len(positions),
            )
        )
        return output

    def decode_step_group(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions: Sequence[int],
        group: Sequence["KVCachePolicy"],
    ) -> Optional[np.ndarray]:
        """Vectorized decode: SnapKV never evicts after prefill, so the
        span is one padded gather (position-sorted per member, matching the
        serial read order) plus one batched masked attention call."""
        order_lists: List[List[int]] = []
        slot_lists: List[np.ndarray] = []
        for policy, key, value, position in zip(group, keys, values, positions):
            store = policy._store
            store.put(
                int(position),
                np.asarray(key, dtype=np.float64),
                np.asarray(value, dtype=np.float64),
            )
            stored = store.positions()
            as_array = np.asarray(stored, dtype=np.int64)
            ascending = bool((np.diff(as_array) > 0).all())
            if store.insertion_slots_are_sequential and ascending:
                # Prefill inserts sorted and decode positions only grow,
                # so insertion order *is* position order and the
                # never-recycled store maps it onto slots 0..n-1.
                order_lists.append(stored)
                slot_lists.append(np.arange(len(stored), dtype=np.int64))
            else:
                order = sorted(stored)
                order_lists.append(order)
                slot_lists.append(store.slots_of(order))
        tables = [policy._store.block_table for policy in group]
        gathered_k, gathered_v, lengths, valid = gather_group_kv(
            tables, slot_lists
        )
        scales = np.asarray([policy.scale for policy in group], dtype=np.float64)
        outputs, _ = batched_group_attention(
            np.asarray(queries, dtype=np.float64),
            gathered_k,
            gathered_v,
            valid,
            scales=scales,
        )
        for policy, position, size in zip(group, positions, lengths):
            policy.stats.record(
                StepRecord(
                    position=int(position),
                    cache_size=int(size),
                    num_attended=int(size),
                )
            )
        return outputs

    def supports_speculation(
        self, prompt_len: int, spec_end_len: int, final_len: int
    ) -> bool:
        """Always: SnapKV prunes only at prefill — decode appends and
        attends densely, so draft rows never perturb earlier state."""
        return True

    def begin_speculation(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        start_position: int,
    ) -> np.ndarray:
        # Serial decode gathers ascending positions; staged positions are
        # strictly larger than everything stored, so the sorted base plus
        # the staged tail reproduces each row's serial gather order.
        base = sorted(self._store.positions())
        return self._dense_speculation(
            self._store, base, queries, keys, values, start_position
        )

    def commit_speculation(self, kept: int) -> int:
        spec = self._spec
        if spec is None:
            return 0
        for record in spec.records[:kept]:
            self.stats.record(record)
        return self._rollback_speculative_rows(self._store, kept)

    def cached_positions(self) -> np.ndarray:
        return np.asarray(sorted(self._store.positions()), dtype=np.int64)

    def kept_prompt_positions(self) -> np.ndarray:
        return np.asarray(self._kept_prompt_positions, dtype=np.int64)

    def exact_resume_by_reprefill(
        self, prompt_len: int, resumed_len: int, final_len: int
    ) -> bool:
        """SnapKV prunes once, at prefill.  While the resumed prompt
        (original prompt + generated so far) is still within the retention
        budget, neither the original prefill nor the resume prefill prunes
        anything and decode attends to the full cache — dense-equivalent.
        Over budget the resume prefill would re-score a *different*
        observation window (the last tokens of the longer pseudo-prompt),
        so those sequences replay instead."""
        return resumed_len <= self.prompt_budget

    def release_kv(self) -> None:
        self._store.release()

    def decode_page_demand(self) -> int:
        return self._store.append_page_demand()

    def kv_pages_held(self) -> int:
        return self._store.pages_held()

    def kv_shared_pages(self) -> int:
        return self._store.shared_page_count()

    def kv_resident_bytes(self) -> int:
        return self._store.resident_bytes()

    def max_cached_tokens(self, prompt_len: int, max_new_tokens: int) -> int:
        prompt_kept = min(
            int(prompt_len),
            max(self.observation_window, self.prompt_budget),
        )
        return min(
            super().max_cached_tokens(prompt_len, max_new_tokens),
            prompt_kept + int(max_new_tokens),
        )

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._kept_prompt_positions = []


__all__ = ["SnapKVPolicy", "pool_scores"]
