"""Baseline KV cache pruning policies the paper compares against.

* :class:`~repro.core.policy.FullCachePolicy` — dense attention (re-exported
  here for convenience).
* :class:`StreamingLLMPolicy` — fixed pattern: attention sinks + sliding
  window (StreamingLLM, ref. [19]).
* :class:`H2OPolicy` — heavy-hitter oracle: step-wise eviction by
  accumulated attention probability (H2O, ref. [7]).
* :class:`SnapKVPolicy` — prefill-only compression using an observation
  window of the final prompt queries (SnapKV, ref. [8]).
* :class:`QuestPolicy` — dynamic-only query-aware top-k selection with no
  memory reduction (Quest, ref. [6]).
"""

from ..policy import FullCachePolicy
from .streaming_llm import StreamingLLMPolicy
from .h2o import H2OPolicy
from .snapkv import SnapKVPolicy
from .quest import QuestPolicy

BASELINE_REGISTRY = {
    "full": FullCachePolicy,
    "streaming_llm": StreamingLLMPolicy,
    "h2o": H2OPolicy,
    "snapkv": SnapKVPolicy,
    "quest": QuestPolicy,
}

__all__ = [
    "FullCachePolicy",
    "StreamingLLMPolicy",
    "H2OPolicy",
    "SnapKVPolicy",
    "QuestPolicy",
    "BASELINE_REGISTRY",
]
