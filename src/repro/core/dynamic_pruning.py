"""Per-step dynamic top-k selection of the most relevant cached tokens.

Paper Sec. III-A.2: at every decoding step only the ``k`` keys with the
highest similarity to the current query participate in the exact attention
computation.  Two selectors are provided:

* :class:`ExactTopKSelector` computes the full dot-product scores and sorts
  them — the reference implementation (what a GPU / conventional digital
  top-k circuit would do).
* :class:`CAMApproximateSelector` mimics the UniCAIM CAM mode: keys and the
  query are quantised to the signed levels the FeFET cell can store, and the
  selection is made on the quantised scores, optionally perturbed by a
  sense-margin noise term that models device variation and the discharge
  race.  The selection order it produces is what the hardware would return,
  so selector fidelity (recall vs. the exact top-k) can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from .attention import attention_scores, head_mean_scores, top_k_indices


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a dynamic top-k selection.

    Attributes
    ----------
    selected_indices:
        Indices (into the presented key stack) of the selected tokens,
        ordered by descending (approximate) score.
    scores:
        The scores the selector used for ranking, aligned with the key stack
        (not only the selected subset).
    exact_scores:
        The exact dot-product scores, for fidelity analysis.  For the exact
        selector this equals ``scores``.
    """

    selected_indices: np.ndarray
    scores: np.ndarray
    exact_scores: np.ndarray

    @property
    def k(self) -> int:
        return int(self.selected_indices.size)


class TopKSelector(Protocol):
    """Interface shared by the exact and CAM-approximate selectors."""

    def select(self, query: np.ndarray, keys: np.ndarray, k: int) -> SelectionResult:
        """Select the top-``k`` keys for the given query."""
        ...


class ExactTopKSelector:
    """Reference top-k selection on exact dot-product scores."""

    def __init__(self, scale: Optional[float] = None) -> None:
        self.scale = scale

    def select(self, query: np.ndarray, keys: np.ndarray, k: int) -> SelectionResult:
        scores = head_mean_scores(attention_scores(query, keys, scale=self.scale))
        selected = top_k_indices(scores, k)
        return SelectionResult(
            selected_indices=selected,
            scores=scores,
            exact_scores=scores.copy(),
        )


def quantize_signed(
    x: np.ndarray,
    bits: int,
    clip_sigma: float = 2.0,
) -> np.ndarray:
    """Quantise values to the signed levels a ``bits``-bit UniCAIM cell stores.

    A ``bits``-bit signed cell provides ``2**bits - 1`` symmetric levels in
    ``[-1, +1]``: ``2**(bits-1) - 1`` negative levels, zero, and
    ``2**(bits-1) - 1`` positive levels (e.g. 2 bits -> {-1, 0, +1},
    3 bits -> 7 levels at multiples of 1/3).  The 1-bit cell is the
    zero-free sign encoding {-1, +1}.  The input is normalised per call by
    ``clip_sigma`` standard deviations so that typical activations span the
    full level range.

    Returns values on the normalised level grid in ``[-1, 1]``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    std = float(np.std(x))
    scale = clip_sigma * std if std > 0 else 1.0
    normalised = np.clip(x / scale, -1.0, 1.0)
    if bits == 1:
        return np.where(normalised >= 0, 1.0, -1.0)
    levels_per_side = 2 ** (bits - 1) - 1
    step = 1.0 / levels_per_side
    return np.clip(np.round(normalised / step) * step, -1.0, 1.0)


@dataclass
class CAMSelectorConfig:
    """Knobs of the CAM-mode approximate selector."""

    key_bits: int = 3
    query_bits: int = 2
    sense_noise_sigma: float = 0.0
    clip_sigma: float = 2.0
    seed: Optional[int] = None


class CAMApproximateSelector:
    """Behavioural model of the CAM-mode approximate top-k selection.

    The CAM mode never computes the numeric attention score: rows discharge
    their sense lines at a rate set by the (quantised) similarity, and the
    ``k`` slowest-discharging rows are latched.  The ranking the hardware
    produces is therefore the ranking of the *quantised* scores plus a small
    sense-margin noise; this class reproduces that ranking.
    """

    def __init__(self, config: Optional[CAMSelectorConfig] = None) -> None:
        self.config = config or CAMSelectorConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def quantize_query(self, query: np.ndarray) -> np.ndarray:
        return quantize_signed(
            query, self.config.query_bits, clip_sigma=self.config.clip_sigma
        )

    def quantize_keys(self, keys: np.ndarray) -> np.ndarray:
        return quantize_signed(
            keys, self.config.key_bits, clip_sigma=self.config.clip_sigma
        )

    def approximate_scores(
        self, query: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Quantised similarity scores, optionally with sense noise."""
        q = self.quantize_query(query)
        k = self.quantize_keys(keys)
        scores = head_mean_scores(attention_scores(q, k))
        if self.config.sense_noise_sigma > 0.0:
            scores = scores + self._rng.normal(
                0.0, self.config.sense_noise_sigma, size=scores.shape
            )
        return scores

    def select(self, query: np.ndarray, keys: np.ndarray, k: int) -> SelectionResult:
        approx = self.approximate_scores(query, keys)
        exact = head_mean_scores(attention_scores(query, keys))
        selected = top_k_indices(approx, k)
        return SelectionResult(
            selected_indices=selected,
            scores=approx,
            exact_scores=exact,
        )


def selection_recall(
    result: SelectionResult, k: Optional[int] = None
) -> float:
    """Recall of a selector's choice against the exact top-k of the same step."""
    if k is None:
        k = result.k
    exact_top = set(int(i) for i in top_k_indices(result.exact_scores, k))
    approx_top = set(int(i) for i in result.selected_indices[:k])
    if not exact_top:
        return 1.0
    return len(exact_top & approx_top) / len(exact_top)


def attention_mass_coverage(
    result: SelectionResult,
    softmax_scale: Optional[float] = None,
) -> float:
    """Fraction of softmax attention mass captured by the selected tokens.

    A selector can miss exact top-k members yet still capture nearly all of
    the attention probability mass; this is the metric that actually
    predicts accuracy impact.
    """
    scores = np.asarray(result.exact_scores, dtype=np.float64)
    if softmax_scale is not None:
        scores = scores * float(softmax_scale)
    shifted = scores - scores.max()
    weights = np.exp(shifted)
    total = float(weights.sum())
    if total <= 0:
        return 0.0
    selected = np.asarray(result.selected_indices, dtype=np.int64)
    return float(weights[selected].sum() / total)


def sweep_selector_fidelity(
    selector: TopKSelector,
    queries: Sequence[np.ndarray],
    keys: np.ndarray,
    k: int,
) -> np.ndarray:
    """Per-query recall of ``selector`` over a batch of queries."""
    recalls = []
    for query in queries:
        result = selector.select(np.asarray(query), keys, k)
        recalls.append(selection_recall(result))
    return np.asarray(recalls, dtype=np.float64)


__all__ = [
    "SelectionResult",
    "TopKSelector",
    "ExactTopKSelector",
    "CAMSelectorConfig",
    "CAMApproximateSelector",
    "quantize_signed",
    "selection_recall",
    "attention_mass_coverage",
    "sweep_selector_fidelity",
]
