"""Behavioural ferroelectric FET (FeFET) device model.

The paper's circuit simulations use the Preisach-based compact model of
Ni et al. (ref. [35]) in HSPICE.  This module provides a behavioural Python
equivalent that captures the three properties the UniCAIM design relies on
(paper Sec. II-B, Fig. 2):

* **Multilevel storage** — partial polarisation switching under different
  program voltages moves the threshold voltage ``V_TH`` between ``2**bits``
  discrete levels (Fig. 2(b)/(c)).
* **Non-destructive read** — a small read voltage ``V_R`` produces a channel
  current that depends on ``V_GS - V_TH`` without disturbing the stored
  polarisation.
* **Device-to-device variation** — the stored ``V_TH`` is perturbed by a
  Gaussian with standard deviation 54 mV (ref. [33]), which is what limits
  the sensing margin in the CAM / current-domain modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class FeFETParams:
    """Electrical parameters of the behavioural FeFET model.

    The defaults follow the qualitative characteristics of HfO2 FeFETs
    reported in the papers the design cites: a ~1 V memory window, ~μA on
    currents at read voltage and a sub-threshold slope around 80 mV/dec.
    """

    vth_low: float = 0.2
    """Threshold voltage of the fully "on"-polarised state (volts)."""

    vth_high: float = 1.2
    """Threshold voltage of the fully "off"-polarised state (volts)."""

    read_voltage: float = 0.8
    """Gate read voltage ``V_R`` applied during CAM / CIM evaluation."""

    on_current: float = 1.0e-6
    """Saturated channel current (amps) when strongly on at ``V_R``."""

    subthreshold_slope: float = 0.08
    """Sub-threshold slope (volts / decade)."""

    off_current_floor: float = 1.0e-12
    """Leakage floor (amps)."""

    program_voltage: float = 3.5
    """Nominal full-switching program voltage ``V_P`` (volts)."""

    program_pulse_width: float = 1.0e-7
    """Program pulse width (seconds)."""

    write_energy: float = 1.0e-15
    """Energy per polarisation switching event (joules, ~fJ for FeFET)."""

    coercive_voltage: float = 1.0
    """Voltage below which essentially no polarisation switches."""

    saturation_voltage: float = 4.0
    """Voltage above which the polarisation fully saturates."""

    variation_sigma: float = 0.054
    """Device-to-device V_TH variation (volts); the paper uses 54 mV."""

    @property
    def memory_window(self) -> float:
        """Separation between the extreme threshold voltages."""
        return self.vth_high - self.vth_low

    def level_vth(self, level: float) -> float:
        """V_TH for a normalised polarisation ``level`` in [0, 1].

        ``level = 1`` is the fully "on" state (lowest V_TH); ``level = 0``
        the fully "off" state (highest V_TH).
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        return self.vth_high - level * self.memory_window


def preisach_polarization(
    voltage: float,
    params: FeFETParams,
    previous: float = 0.0,
) -> float:
    """Saturating (Preisach-style) polarisation update for one program pulse.

    Returns the new normalised polarisation in ``[0, 1]``.  A positive
    program voltage increases polarisation toward 1 following a tanh-shaped
    switching curve between the coercive and saturation voltages; a negative
    voltage symmetrically erases toward 0.  Pulses below the coercive
    voltage leave the state unchanged (non-destructive read).
    """
    if not 0.0 <= previous <= 1.0:
        raise ValueError("previous polarisation must be in [0, 1]")
    magnitude = abs(voltage)
    if magnitude <= params.coercive_voltage:
        return previous
    span = max(params.saturation_voltage - params.coercive_voltage, 1e-9)
    progress = np.clip((magnitude - params.coercive_voltage) / span, 0.0, 1.0)
    switched_fraction = float(np.tanh(2.5 * progress) / np.tanh(2.5))
    if voltage > 0:
        return previous + (1.0 - previous) * switched_fraction
    return previous * (1.0 - switched_fraction)


class FeFET:
    """A single FeFET with multilevel polarisation state.

    The device is programmed by voltage pulses (:meth:`program`,
    :meth:`program_level`) and read out non-destructively
    (:meth:`drain_current`).
    """

    def __init__(
        self,
        params: Optional[FeFETParams] = None,
        rng: Optional[np.random.Generator] = None,
        apply_variation: bool = False,
    ) -> None:
        self.params = params or FeFETParams()
        self._polarization = 0.0
        self._write_count = 0
        rng = rng or np.random.default_rng()
        self._vth_offset = (
            float(rng.normal(0.0, self.params.variation_sigma))
            if apply_variation
            else 0.0
        )

    # ------------------------------------------------------------------
    @property
    def polarization(self) -> float:
        return self._polarization

    @property
    def vth(self) -> float:
        """Current threshold voltage including device variation."""
        return self.params.level_vth(self._polarization) + self._vth_offset

    @property
    def write_count(self) -> int:
        return self._write_count

    # ------------------------------------------------------------------
    def program(self, voltage: float) -> float:
        """Apply one program pulse; returns the new polarisation."""
        new_state = preisach_polarization(voltage, self.params, self._polarization)
        if new_state != self._polarization:
            self._write_count += 1
        self._polarization = new_state
        return new_state

    def program_level(self, level: float) -> None:
        """Directly program a normalised multilevel state in [0, 1].

        Models the program-verify sequence used to place the device on a
        specific intermediate level (Fig. 2(c)); counts as one write.
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        self._polarization = float(level)
        self._write_count += 1

    def erase(self) -> None:
        """Erase to the fully "off" state."""
        self.program(-self.params.saturation_voltage)

    # ------------------------------------------------------------------
    def drain_current(self, gate_voltage: Optional[float] = None) -> float:
        """Channel current at the given gate voltage (non-destructive read).

        Above threshold the current saturates toward ``on_current`` with a
        soft square-law knee; below threshold it falls off exponentially
        with the sub-threshold slope down to the leakage floor.
        """
        params = self.params
        vgs = params.read_voltage if gate_voltage is None else float(gate_voltage)
        overdrive = vgs - self.vth
        if overdrive >= 0:
            knee = params.memory_window
            current = params.on_current * min(1.0, (overdrive / knee) ** 2 + overdrive / knee)
            return max(current, params.off_current_floor)
        decades = overdrive / params.subthreshold_slope
        current = params.on_current * 10.0**decades
        return max(current, params.off_current_floor)

    def conductance(self, gate_voltage: Optional[float] = None, drain_voltage: float = 0.1) -> float:
        """Effective channel conductance (siemens) at a small drain bias."""
        if drain_voltage <= 0:
            raise ValueError("drain_voltage must be > 0")
        return self.drain_current(gate_voltage) / drain_voltage

    def write_energy(self) -> float:
        """Energy of one polarisation write event (joules)."""
        return self.params.write_energy


def multilevel_vth_targets(params: FeFETParams, levels: int) -> np.ndarray:
    """Evenly spaced V_TH targets for ``levels`` storage states (Fig. 2(c))."""
    if levels < 2:
        raise ValueError("levels must be >= 2")
    fractions = np.linspace(1.0, 0.0, levels)
    return np.asarray([params.level_vth(f) for f in fractions], dtype=np.float64)


__all__ = [
    "FeFETParams",
    "FeFET",
    "preisach_polarization",
    "multilevel_vth_targets",
]
