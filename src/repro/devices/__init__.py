"""Behavioural device models: FeFET, MOSFET, capacitors and variation."""

from .fefet import FeFET, FeFETParams, multilevel_vth_targets, preisach_polarization
from .mosfet import MOSFET, MOSFETParams
from .rc import (
    Capacitor,
    WireParasitics,
    discharge_time_to_threshold,
    dynamic_energy,
    rc_delay,
    voltage_after_discharge,
)
from .variation import VariationModel

__all__ = [
    "FeFET",
    "FeFETParams",
    "multilevel_vth_targets",
    "preisach_polarization",
    "MOSFET",
    "MOSFETParams",
    "Capacitor",
    "WireParasitics",
    "discharge_time_to_threshold",
    "dynamic_energy",
    "rc_delay",
    "voltage_after_discharge",
    "VariationModel",
]
