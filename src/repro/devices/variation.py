"""Device-to-device variation models.

The paper evaluates the current-domain CIM linearity (Fig. 9) under FeFET
threshold-voltage variation with a standard deviation of 54 mV (ref. [33]).
This module centralises the statistical assumptions so every circuit model
draws variation the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class VariationModel:
    """Gaussian variation of FeFET threshold voltage and peripheral offsets."""

    vth_sigma: float = 0.054
    """FeFET V_TH device-to-device standard deviation (volts)."""

    comparator_offset_sigma: float = 0.002
    """Input-referred offset of sense comparators (volts)."""

    current_mismatch_fraction: float = 0.02
    """Relative mismatch of reference / mirror currents."""

    seed: Optional[int] = None

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def sample_vth_offsets(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample per-device V_TH offsets (volts)."""
        rng = rng or self.rng()
        return rng.normal(0.0, self.vth_sigma, size=shape)

    def sample_comparator_offsets(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or self.rng()
        return rng.normal(0.0, self.comparator_offset_sigma, size=shape)

    def sample_current_mismatch(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Multiplicative current mismatch factors (mean 1.0)."""
        rng = rng or self.rng()
        return 1.0 + rng.normal(0.0, self.current_mismatch_fraction, size=shape)

    @classmethod
    def ideal(cls) -> "VariationModel":
        """A variation model with every sigma set to zero (nominal devices)."""
        return cls(vth_sigma=0.0, comparator_offset_sigma=0.0, current_mismatch_fraction=0.0, seed=0)

    @classmethod
    def paper_default(cls, seed: Optional[int] = None) -> "VariationModel":
        """The 54 mV V_TH sigma quoted in the paper."""
        return cls(seed=seed)


__all__ = ["VariationModel"]
