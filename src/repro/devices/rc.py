"""RC primitives: capacitors, wire parasitics and discharge dynamics.

The CAM mode of UniCAIM is a timing race: every sense line (SL) is
pre-charged to ``V_DD`` and then discharged by the summed cell currents, so
the SL with the *smallest* current (highest similarity) crosses the sensing
threshold last.  The charge-domain mode accumulates similarity by sharing
charge between the SL capacitor and a larger accumulation capacitor.  Both
behaviours reduce to a handful of RC relations implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WireParasitics:
    """Per-cell wire parasitics (extracted following the paper's ref. [36])."""

    capacitance_per_cell: float = 0.05e-15
    """Wire capacitance contributed by each cell on the line (farads)."""

    resistance_per_cell: float = 2.0
    """Wire resistance contributed by each cell (ohms)."""

    def line_capacitance(self, cells: int) -> float:
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return self.capacitance_per_cell * cells

    def line_resistance(self, cells: int) -> float:
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return self.resistance_per_cell * cells


class Capacitor:
    """An ideal capacitor tracking its stored voltage and charge."""

    def __init__(self, capacitance: float, voltage: float = 0.0) -> None:
        if capacitance <= 0:
            raise ValueError("capacitance must be > 0")
        self.capacitance = float(capacitance)
        self.voltage = float(voltage)

    @property
    def charge(self) -> float:
        return self.capacitance * self.voltage

    @property
    def energy(self) -> float:
        """Stored energy ``1/2 C V^2`` (joules)."""
        return 0.5 * self.capacitance * self.voltage**2

    def precharge(self, voltage: float) -> float:
        """Charge to ``voltage``; returns the energy drawn from the supply.

        Charging a capacitor from a constant supply dissipates ``C V dV``
        overall; the conventional accounting (used by the energy model) is
        ``C * V_supply * delta_V``.
        """
        delta = voltage - self.voltage
        energy = self.capacitance * abs(delta) * abs(voltage)
        self.voltage = float(voltage)
        return energy

    def discharge_constant_current(self, current: float, duration: float) -> float:
        """Discharge with a constant current for ``duration``; returns new voltage."""
        if current < 0 or duration < 0:
            raise ValueError("current and duration must be >= 0")
        delta_v = current * duration / self.capacitance
        self.voltage = max(0.0, self.voltage - delta_v)
        return self.voltage

    def share_with(self, other: "Capacitor") -> float:
        """Connect to ``other`` and equalise voltages (charge sharing).

        Returns the common voltage after sharing.  Total charge is
        conserved; the energy difference is dissipated in the switch.
        """
        total_charge = self.charge + other.charge
        total_cap = self.capacitance + other.capacitance
        common = total_charge / total_cap
        self.voltage = common
        other.voltage = common
        return common


def discharge_time_to_threshold(
    capacitance: float,
    start_voltage: float,
    threshold_voltage: float,
    current: float,
) -> float:
    """Time for a constant current to pull a capacitor down to a threshold.

    ``t = C * (V_start - V_th) / I``.  An (effectively) zero current returns
    infinity — the line never crosses the threshold, which is how the
    highest-similarity rows "win" the CAM race.
    """
    if capacitance <= 0:
        raise ValueError("capacitance must be > 0")
    if threshold_voltage > start_voltage:
        raise ValueError("threshold must be <= start voltage")
    if current <= 0:
        return float("inf")
    return capacitance * (start_voltage - threshold_voltage) / current


def voltage_after_discharge(
    capacitance: float,
    start_voltage: float,
    current: float,
    duration: float,
) -> float:
    """Voltage left on a capacitor after constant-current discharge."""
    if capacitance <= 0:
        raise ValueError("capacitance must be > 0")
    if duration < 0 or current < 0:
        raise ValueError("duration and current must be >= 0")
    return max(0.0, start_voltage - current * duration / capacitance)


def rc_delay(resistance: float, capacitance: float, swing_fraction: float = 0.5) -> float:
    """Elmore-style RC delay to reach a fraction of the full swing."""
    if resistance < 0 or capacitance < 0:
        raise ValueError("resistance and capacitance must be >= 0")
    if not 0.0 < swing_fraction < 1.0:
        raise ValueError("swing_fraction must be in (0, 1)")
    return -resistance * capacitance * float(np.log(1.0 - swing_fraction))


def dynamic_energy(capacitance: float, voltage: float) -> float:
    """Switching energy ``C V^2`` of one full charge/discharge cycle."""
    if capacitance < 0:
        raise ValueError("capacitance must be >= 0")
    return capacitance * voltage**2


__all__ = [
    "WireParasitics",
    "Capacitor",
    "discharge_time_to_threshold",
    "voltage_after_discharge",
    "rc_delay",
    "dynamic_energy",
]
