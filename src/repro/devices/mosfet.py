"""Simple MOSFET model for the peripheral transistors of the UniCAIM array.

The paper uses the 45 nm predictive technology (BSIM) model in HSPICE for
all ordinary MOSFETs (pre-charge PMOS, discharge NMOS, pass transistors of
the 1T1F units).  The behavioural reproduction only needs the square-law
level of detail: on/off behaviour, drive current, and gate/junction
capacitances for RC timing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MOSFETParams:
    """Square-law MOSFET parameters loosely matching a 45 nm node."""

    vth: float = 0.4
    """Threshold voltage (volts)."""

    k_prime: float = 300e-6
    """Process transconductance ``k' = mu Cox`` (A/V^2) times W/L."""

    channel_length_modulation: float = 0.05
    """Early-effect coefficient lambda (1/V)."""

    gate_capacitance: float = 0.1e-15
    """Gate capacitance (farads) of a minimum-size device."""

    junction_capacitance: float = 0.05e-15
    """Source/drain junction capacitance (farads)."""

    leakage_current: float = 1e-12
    """Off-state leakage (amps)."""

    is_pmos: bool = False

    def scaled(self, width_multiple: float) -> "MOSFETParams":
        """Return parameters for a device ``width_multiple`` times wider."""
        if width_multiple <= 0:
            raise ValueError("width_multiple must be > 0")
        return MOSFETParams(
            vth=self.vth,
            k_prime=self.k_prime * width_multiple,
            channel_length_modulation=self.channel_length_modulation,
            gate_capacitance=self.gate_capacitance * width_multiple,
            junction_capacitance=self.junction_capacitance * width_multiple,
            leakage_current=self.leakage_current * width_multiple,
            is_pmos=self.is_pmos,
        )


class MOSFET:
    """Square-law NMOS/PMOS device with cut-off, triode and saturation regions."""

    def __init__(self, params: MOSFETParams | None = None) -> None:
        self.params = params or MOSFETParams()

    def drain_current(self, vgs: float, vds: float) -> float:
        """Drain current for the given terminal voltages.

        For PMOS devices pass the magnitudes of ``V_SG`` and ``V_SD`` (the
        model is symmetric); the returned current is always positive.
        """
        params = self.params
        vgs = abs(vgs) if params.is_pmos else vgs
        vds = abs(vds) if params.is_pmos else vds
        if vds < 0:
            raise ValueError("vds must be >= 0 (fold PMOS polarities before calling)")
        overdrive = vgs - params.vth
        if overdrive <= 0:
            return params.leakage_current
        if vds < overdrive:
            current = params.k_prime * (overdrive * vds - 0.5 * vds**2)
        else:
            current = 0.5 * params.k_prime * overdrive**2
            current *= 1.0 + params.channel_length_modulation * (vds - overdrive)
        return max(current, params.leakage_current)

    def on_resistance(self, vgs: float, vds: float = 0.05) -> float:
        """Small-signal on-resistance in the triode region (ohms)."""
        current = self.drain_current(vgs, vds)
        return vds / current

    def is_on(self, vgs: float) -> bool:
        vgs = abs(vgs) if self.params.is_pmos else vgs
        return vgs > self.params.vth


__all__ = ["MOSFETParams", "MOSFET"]
