"""Process-parallel serving: wall-clock throughput scaling across cores.

``bench_replicated_scaling.py`` gates the *lockstep-epoch* axis — the
deterministic stand-in for hardware parallelism when workers are
threads serialized by the GIL.  This benchmark gates the real thing:
``EngineCluster(mode="process")`` runs each worker as a forked process
with its KV arenas in ``multiprocessing.shared_memory`` blocks, so N
workers run N numpy forwards on N cores and the epoch-axis speedup
becomes a wall-clock one.

* **Scaling** (``bursty_multi_tenant``): the same trace replayed on a
  single bare ``BatchedEngine`` (the one-core ceiling) and on process
  clusters at 2 (and, with enough cores, 4) workers.  Measured in
  aggregate generated tokens per wall-clock second.  Gate: the best
  process cluster reaches >= 1.5x the single-engine tokens/s — **hard**
  when the host has 2+ cores, softened by ``REPRO_PERF_SOFT=1`` on CI
  (shared runners), and informational on single-core hosts where the
  kernel serializes the workers and no speedup is physically possible.
* **Correctness riders** (always hard, every host): per-request token
  streams from the process cluster are identical to the threaded
  lockstep cluster and to the bare engine, and zero shared-memory
  segments remain in ``/dev/shm`` after ``shutdown()``.

Fast lane: ``pytest -x -q -k process`` runs just this file plus the
process-cluster test module.
"""

import glob
import os
import time

from conftest import perf_gate, write_report

from repro.core.kv_pool import KVPoolGroup
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import (
    BatchedEngine,
    EngineCluster,
    Scenario,
    SchedulerPolicy,
    get_scenario,
)

HEADS, HEAD_DIM, LAYERS = 2, 8, 2

SCENARIO = "bursty_multi_tenant"
MIN_SPEEDUP = 1.5


def serving_model() -> TransformerLM:
    config = ModelConfig(
        vocab_size=89,
        model_dim=HEADS * HEAD_DIM,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_layers=LAYERS,
        mlp_hidden_dim=24,
        seed=5,
    )
    return TransformerLM(config)


def engine_factory(model: TransformerLM, scenario: Scenario):
    def factory() -> BatchedEngine:
        return BatchedEngine(
            model,
            max_batch_size=scenario.max_batch_size,
            kv_pools=KVPoolGroup(
                LAYERS,
                page_size=scenario.page_size,
                num_heads=HEADS,
                head_dim=HEAD_DIM,
                num_pages=scenario.num_pages,
            ),
            scheduler_policy=SchedulerPolicy(
                preemption=True, admission="optimistic"
            ),
        )

    return factory


def requests_for(scenario: Scenario):
    return [req.to_serving_request() for req in scenario.trace()]


def run_single_engine(model, scenario):
    engine = engine_factory(model, scenario)()
    for req in requests_for(scenario):
        engine.submit(req)
    start = time.perf_counter()
    responses = engine.run()
    wall = time.perf_counter() - start
    return {r.request_id: r for r in responses}, wall


def run_cluster(model, scenario, num_workers, mode):
    cluster = EngineCluster(
        engine_factory(model, scenario),
        num_workers=num_workers,
        router="least_pressure",
        mode=mode,
    )
    try:
        for req in requests_for(scenario):
            cluster.submit(req)
        start = time.perf_counter()
        responses = cluster.run()
        wall = time.perf_counter() - start
    finally:
        cluster.shutdown()
    return {r.request_id: r for r in responses}, wall


def leaked_segments() -> list:
    return glob.glob("/dev/shm/repro-cluster-*") + glob.glob(
        "/dev/shm/repro-arena-*"
    )


def total_tokens(responses) -> int:
    return sum(len(r.token_ids) for r in responses.values())


def test_process_scaling(results_dir):
    model = serving_model()
    scenario = get_scenario(SCENARIO)
    cores = os.cpu_count() or 1
    worker_counts = [2] if cores < 4 else [2, 4]

    lines = [
        "Process-parallel serving: wall-clock scaling over shared-memory "
        "KV arenas",
        "",
        f"[{scenario.name}] {len(scenario.trace())} requests, "
        f"least_pressure router, {cores} host core(s)",
    ]

    ref_responses, single_wall = run_single_engine(model, scenario)
    assert all(
        r.finish_reason != "error" for r in ref_responses.values()
    ), "single-engine baseline errored"
    ref_tokens = {rid: r.token_ids for rid, r in ref_responses.items()}
    tokens_out = total_tokens(ref_responses)
    single_tps = tokens_out / single_wall
    lines += [
        f"{'config':>16} {'tokens':>7} {'wall_s':>7} {'tok/s':>9} "
        f"{'speedup':>8}",
        f"{'single engine':>16} {tokens_out:>7} {single_wall:>7.2f} "
        f"{single_tps:>9.1f} {'1.00x':>8}",
    ]

    # Token identity vs the threaded lockstep cluster (deterministic
    # reference axis) before any wall-clock claims.
    lockstep_responses, _ = run_cluster(model, scenario, 2, "thread")
    lockstep_tokens = {
        rid: r.token_ids for rid, r in lockstep_responses.items()
    }
    assert lockstep_tokens == ref_tokens, (
        "threaded lockstep cluster diverged from the bare engine"
    )

    best_speedup = 0.0
    for num_workers in worker_counts:
        responses, wall = run_cluster(model, scenario, num_workers, "process")
        errors = [
            r for r in responses.values() if r.finish_reason == "error"
        ]
        assert not errors, (
            f"{len(errors)} errored requests at N={num_workers}: "
            f"{[r.error_cause for r in errors][:4]}"
        )
        tokens = {rid: r.token_ids for rid, r in responses.items()}
        assert tokens == ref_tokens, (
            f"process cluster at N={num_workers} changed generated tokens"
        )
        tps = total_tokens(responses) / wall
        speedup = tps / single_tps
        best_speedup = max(best_speedup, speedup)
        lines.append(
            f"{f'{num_workers} proc workers':>16} "
            f"{total_tokens(responses):>7} {wall:>7.2f} {tps:>9.1f} "
            f"{speedup:>7.2f}x"
        )

    leaked = leaked_segments()
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    lines.append("")
    lines.append("token identity: process == threaded lockstep == bare "
                 "engine (all requests)")
    lines.append("shared-memory segments leaked after shutdown: 0")

    if cores >= 2:
        perf_gate(
            best_speedup >= MIN_SPEEDUP,
            f"process cluster best wall-clock aggregate tokens/s is "
            f"{best_speedup:.2f}x the single engine on {scenario.name} "
            f"(target >= {MIN_SPEEDUP}x on a {cores}-core host)",
        )
    else:
        lines.append(
            f"NOTE: single-core host — {MIN_SPEEDUP}x wall-clock gate "
            f"not applicable (measured {best_speedup:.2f}x, "
            "informational only)"
        )

    report = "\n".join(lines)
    print("\n" + report)
    write_report(results_dir, "process_scaling", report)
