"""Paged-KV capacity: max concurrent sequences at a fixed byte budget.

The point of the paged KV pool is the "heavy traffic" axis of the ROADMAP:
at a fixed amount of KV memory, how many sequences can be *in flight at
once*?

* **Dense layout** (pre-paging engine): every sequence owns a per-layer
  K/V array sized for its whole lifetime (prompt + generated tokens), so
  capacity is ``budget // bytes_per_sequence`` regardless of how much the
  sequences have in common.
* **Paged layout**: sequences draw fixed-size pages from one shared
  per-layer arena, and a shared prompt prefix — cached once by the
  :class:`~repro.serving.prefix_cache.PrefixCache` — is *adopted* by every
  sharer (refcounted pages, copy-on-write on divergence).  Only each
  sequence's unique suffix and generated tokens consume fresh pages, so a
  shared-prefix workload packs several times more concurrent sequences
  into the same bytes.

The benchmark runs a 16-request shared-prefix workload (full-cache policy,
the memory-heavy baseline) through a paged engine whose per-layer arenas
are sized to a budget that fits ~4 dense sequences, with no batch-size cap
(``max_batch_size=None`` — concurrency is bounded by page availability
alone).  It reports the observed peak concurrency against the dense
capacity and asserts the ≥ 2x multiplier.  The capacity numbers are counts
of reserved/allocated pages — deterministic, so the floor is a hard
assertion (no wall-clock noise).
"""

import numpy as np
from conftest import write_report

from repro.core.kv_pool import KVPoolGroup
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import BatchedEngine, ServingRequest

NUM_REQUESTS = 16
SHARED_PREFIX = 96
SUFFIX_LEN = 8
NEW_TOKENS = 32
PAGE_SIZE = 16
DENSE_BUDGET_SEQUENCES = 4  # arena sized to hold exactly this many dense seqs


def capacity_model() -> TransformerLM:
    config = ModelConfig(
        vocab_size=1024,
        model_dim=64,
        num_heads=4,
        head_dim=16,
        num_layers=2,
        mlp_hidden_dim=0,
        seed=0,
    )
    return TransformerLM(config)


def shared_prefix_prompts(model: TransformerLM):
    rng = np.random.default_rng(11)
    vocab = model.config.vocab_size
    shared = list(map(int, rng.integers(0, vocab, size=SHARED_PREFIX)))
    return [
        shared + list(map(int, rng.integers(0, vocab, size=SUFFIX_LEN)))
        for _ in range(NUM_REQUESTS)
    ]


def dense_bytes_per_sequence(model: TransformerLM) -> int:
    """Lifetime K/V bytes of one sequence in the dense per-sequence layout.

    One float64 K row and one V row per token per layer — exactly what the
    pre-paging full-cache policy allocated for prompt + generated tokens.
    """
    config = model.config
    tokens = SHARED_PREFIX + SUFFIX_LEN + NEW_TOKENS
    row_bytes = 2 * config.num_heads * config.head_dim * 8
    return config.num_layers * tokens * row_bytes


def run_paged(model: TransformerLM, budget_bytes: int, codec=None):
    pools = KVPoolGroup.from_byte_budget(
        num_layers=model.config.num_layers,
        page_size=PAGE_SIZE,
        num_heads=model.config.num_heads,
        head_dim=model.config.head_dim,
        total_bytes=budget_bytes,
        codec=codec,
    )
    engine = BatchedEngine(model, kv_pools=pools, max_batch_size=None)
    for prompt in shared_prefix_prompts(model):
        engine.submit(ServingRequest(prompt_ids=prompt, max_new_tokens=NEW_TOKENS))
    responses = engine.run()
    assert all(r.finish_reason == "length" for r in responses), [
        (r.request_id, r.finish_reason, r.error) for r in responses
    ]
    assert all(r.num_generated == NEW_TOKENS for r in responses)
    return engine, responses


def test_paged_capacity_multiplier_at_least_2x(results_dir):
    model = capacity_model()
    per_seq = dense_bytes_per_sequence(model)
    budget = DENSE_BUDGET_SEQUENCES * per_seq
    dense_capacity = budget // per_seq

    engine, _ = run_paged(model, budget)
    stats = engine.stats()
    peak = stats["peak_active"]
    multiplier = peak / dense_capacity
    pool = stats["kv_pool"]

    lines = [
        "Paged KV capacity — max concurrent sequences at a fixed byte budget",
        f"workload: {NUM_REQUESTS} requests, {SHARED_PREFIX}-token shared "
        f"prefix + {SUFFIX_LEN}-token suffix, {NEW_TOKENS} new tokens, "
        "full-cache policy",
        f"budget: {budget} bytes of KV arena "
        f"({DENSE_BUDGET_SEQUENCES} dense sequences' worth)",
        "",
        f"{'layout':>8}  {'max concurrent':>14}",
        f"{'dense':>8}  {dense_capacity:>14d}",
        f"{'paged':>8}  {peak:>14d}",
        f"capacity multiplier: {multiplier:.2f}x",
        "",
        "pool telemetry: "
        f"peak pages {pool['peak_pages_in_use']} / {pool['pages_total']}, "
        f"CoW splits {pool['cow_splits']}, "
        f"prefix pages adopted {pool['prefix_pages_adopted']}",
        f"admission: {stats['admission']}",
    ]
    write_report(results_dir, "paged_capacity", "\n".join(lines))
    print("\n".join(lines))

    # Deterministic counting property, not wall-clock: hard floor.
    assert multiplier >= 2.0, (
        f"paged capacity multiplier {multiplier:.2f}x below the 2x floor"
    )
    assert pool["prefix_pages_adopted"] > 0


def test_int8_capacity_at_least_2x_fp64_at_same_budget(results_dir):
    """Quantised pages: ≥2x the fp64 concurrency from the same bytes.

    Both lanes run the identical workload against arenas built from the
    *same* byte budget — tightened to two dense sequences' worth so the
    fp64 lane is genuinely page-bound — differing only in storage codec.
    int8 rows cost 20 bytes instead of 128 (scales included), so the
    budget affords ~6.4x the pages; the observed concurrency multiplier
    is what the ROADMAP gate cares about.  Deterministic page counting,
    hard assertion.
    """
    model = capacity_model()
    budget = 2 * dense_bytes_per_sequence(model)

    fp_engine, _ = run_paged(model, budget)
    int8_engine, _ = run_paged(model, budget, codec="int8")
    fp_stats = fp_engine.stats()
    int8_stats = int8_engine.stats()
    fp_peak = fp_stats["peak_active"]
    int8_peak = int8_stats["peak_active"]
    multiplier = int8_peak / fp_peak
    fp_pool = fp_stats["kv_pool"]
    int8_pool = int8_stats["kv_pool"]

    lines = [
        "Quantized KV capacity — int8 vs fp64 arenas at the same byte budget",
        f"workload: {NUM_REQUESTS} requests, {SHARED_PREFIX}-token shared "
        f"prefix + {SUFFIX_LEN}-token suffix, {NEW_TOKENS} new tokens, "
        "full-cache policy",
        f"budget: {budget} bytes of KV arena (2 dense sequences' worth)",
        "",
        f"{'codec':>6}  {'bytes/token':>11}  {'pages':>6}  {'max concurrent':>14}",
        f"{fp_pool['codec']:>6}  {fp_pool['bytes_per_token']:>11.1f}  "
        f"{fp_pool['pages_total']:>6d}  {fp_peak:>14d}",
        f"{int8_pool['codec']:>6}  {int8_pool['bytes_per_token']:>11.1f}  "
        f"{int8_pool['pages_total']:>6d}  {int8_peak:>14d}",
        f"capacity multiplier: {multiplier:.2f}x",
        "",
        "int8 pool telemetry: "
        f"peak pages {int8_pool['peak_pages_in_use']} / {int8_pool['pages_total']}, "
        f"CoW splits {int8_pool['cow_splits']}, "
        f"prefix pages adopted {int8_pool['prefix_pages_adopted']}",
    ]
    write_report(results_dir, "quantized_capacity", "\n".join(lines))
    print("\n".join(lines))

    assert multiplier >= 2.0, (
        f"int8 capacity multiplier {multiplier:.2f}x below the 2x floor "
        f"(fp64 peak {fp_peak}, int8 peak {int8_peak})"
    )
    assert int8_pool["codec"] == "int8"
    assert int8_pool["bytes_per_token"] < fp_pool["bytes_per_token"] / 4


def test_paged_engine_matches_dense_tokens_on_capacity_workload(results_dir):
    """The capacity win must not change a single generated token."""
    model = capacity_model()
    prompts = shared_prefix_prompts(model)
    dense_engine = BatchedEngine(model, max_batch_size=NUM_REQUESTS)
    for prompt in prompts:
        dense_engine.submit(
            ServingRequest(prompt_ids=prompt, max_new_tokens=NEW_TOKENS)
        )
    dense = dense_engine.run()
    _, paged = run_paged(
        model, DENSE_BUDGET_SEQUENCES * dense_bytes_per_sequence(model)
    )
    for d, p in zip(dense, paged):
        assert d.token_ids == p.token_ids
