"""Replicated serving: near-linear throughput scaling across workers.

One ``BatchedEngine`` is the single-process ceiling.  ``EngineCluster``
replicates it — N workers, each with its own KV arena and prefix cache,
behind a router — and this benchmark measures what replication buys on
the named workload scenarios:

* **Scaling** (``bursty_multi_tenant``, least-pressure router): the same
  trace replayed at 1/2/4 workers.  Throughput is measured in completed
  requests per **lockstep epoch** — one epoch = one ``cluster.step()``
  round in which every live worker with work takes exactly one engine
  step.  In deployment each worker owns a core, so the cluster's
  wall-clock time is the slowest worker's step count, which is precisely
  the epoch count: epochs are the hardware-parallel time axis, measured
  deterministically.  (Host wall clock is reported alongside but not
  gated — this container serializes all workers onto one core through
  the GIL, so wall-clock "scaling" here would measure contention, not
  the architecture.)  Gates: >= 1.7x aggregate request throughput at 2
  workers and >= 3.0x at 4, vs 1 worker.  Scaling is sublinear-by-
  physics at the tail: with 26 requests the longest single request
  lower-bounds the epoch count however many workers serve.
* **Cache-aware routing** (``shared_prefix_overload``, 4 workers):
  ``prefix_affinity`` must beat ``round_robin`` on cluster-wide
  prefix-cache hit rate and tokens reused — sticky routing keeps a
  tenant's shared prefix hot on one worker instead of cold-filling (and
  shedding, under page pressure) every worker's cache.
* **Correctness riders**: every request completes, and per-request
  token streams are identical across all worker counts and routers
  (replication must never change what a request generates).

Gates are hard locally and softened by ``REPRO_PERF_SOFT=1`` on CI
(epoch counts are deterministic, so these only flake if behaviour
actually changes).
"""

import time

from conftest import perf_gate, write_report

from repro.core.kv_pool import KVPoolGroup
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import (
    BatchedEngine,
    EngineCluster,
    Scenario,
    SchedulerPolicy,
    ServingRequest,
    get_scenario,
)

HEADS, HEAD_DIM, LAYERS = 2, 8, 2

SCALING_SCENARIO = "bursty_multi_tenant"
AFFINITY_SCENARIO = "shared_prefix_overload"
WORKER_COUNTS = (1, 2, 4)
MIN_SPEEDUP = {2: 1.7, 4: 3.0}


def serving_model() -> TransformerLM:
    config = ModelConfig(
        vocab_size=89,
        model_dim=HEADS * HEAD_DIM,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_layers=LAYERS,
        mlp_hidden_dim=24,
        seed=5,
    )
    return TransformerLM(config)


def engine_factory(model: TransformerLM, scenario: Scenario):
    def factory() -> BatchedEngine:
        return BatchedEngine(
            model,
            max_batch_size=scenario.max_batch_size,
            kv_pools=KVPoolGroup(
                LAYERS,
                page_size=scenario.page_size,
                num_heads=HEADS,
                head_dim=HEAD_DIM,
                num_pages=scenario.num_pages,
            ),
            scheduler_policy=SchedulerPolicy(
                preemption=True, admission="optimistic"
            ),
        )

    return factory


def run_cluster(model, scenario, num_workers, router):
    """Pre-submit the whole trace, drive lockstep to completion.

    Pre-submitting keeps admission order (and so routing and epoch
    counts) fully deterministic; returns
    ``(responses by id, epochs, wall seconds, cluster)``.
    """
    cluster = EngineCluster(
        engine_factory(model, scenario),
        num_workers=num_workers,
        router=router,
    )
    for req in scenario.trace():
        cluster.submit(
            ServingRequest(
                prompt_ids=list(req.prompt_ids),
                max_new_tokens=req.max_new_tokens,
                request_id=req.request_id,
                priority=req.priority,
                tenant=req.tenant,
            )
        )
    start = time.perf_counter()
    responses = cluster.run()
    wall = time.perf_counter() - start
    return (
        {r.request_id: r for r in responses},
        cluster.step_count,
        wall,
        cluster,
    )


def test_replicated_scaling_and_affinity(results_dir):
    model = serving_model()
    lines = ["Replicated serving: throughput scaling and cache-aware routing"]

    # ------------------------------------------------------------------
    # Scaling: bursty_multi_tenant at 1/2/4 workers, least-pressure.
    # ------------------------------------------------------------------
    scenario = get_scenario(SCALING_SCENARIO)
    trace_len = len(scenario.trace())
    lines += [
        "",
        f"[{scenario.name}] {trace_len} requests, least_pressure router",
        "(epochs = lockstep rounds = the slowest worker's step count — "
        "the hardware-parallel time axis; wall clock is informational, "
        "this host serializes workers onto one core)",
        f"{'workers':>8} {'completed':>10} {'epochs':>7} "
        f"{'req/epoch':>10} {'speedup':>8} {'wall_s':>7}",
    ]
    throughput = {}
    reference_tokens = None
    for num_workers in WORKER_COUNTS:
        responses, epochs, wall, cluster = run_cluster(
            model, scenario, num_workers, "least_pressure"
        )
        assert len(responses) == trace_len
        errors = [
            r for r in responses.values() if r.finish_reason == "error"
        ]
        assert not errors, f"{len(errors)} errored requests at N={num_workers}"
        tokens = {rid: r.token_ids for rid, r in responses.items()}
        if reference_tokens is None:
            reference_tokens = tokens
        else:
            assert tokens == reference_tokens, (
                "replication changed generated tokens"
            )
        throughput[num_workers] = trace_len / epochs
        speedup = throughput[num_workers] / throughput[WORKER_COUNTS[0]]
        lines.append(
            f"{num_workers:>8} {len(responses):>10} {epochs:>7} "
            f"{throughput[num_workers]:>10.3f} {speedup:>7.2f}x "
            f"{wall:>7.2f}"
        )
    for num_workers, floor in MIN_SPEEDUP.items():
        speedup = throughput[num_workers] / throughput[1]
        perf_gate(
            speedup >= floor,
            f"{num_workers}-worker aggregate request throughput is "
            f"{speedup:.2f}x the 1-worker baseline on {scenario.name} "
            f"(target >= {floor}x)",
        )

    # ------------------------------------------------------------------
    # Cache-aware routing: prefix_affinity vs round_robin at 4 workers.
    # ------------------------------------------------------------------
    scenario = get_scenario(AFFINITY_SCENARIO)
    lines += [
        "",
        f"[{scenario.name}] 4 workers, prefix_affinity vs round_robin",
        f"{'router':>16} {'hit_rate':>9} {'hits':>6} {'reused_tok':>11} "
        f"{'epochs':>7}",
    ]
    cache_stats = {}
    affinity_tokens = {}
    for router in ("round_robin", "prefix_affinity"):
        responses, epochs, _, cluster = run_cluster(
            model, scenario, 4, router
        )
        assert all(
            r.finish_reason != "error" for r in responses.values()
        )
        affinity_tokens[router] = {
            rid: r.token_ids for rid, r in responses.items()
        }
        merged = cluster.stats()["cluster"]["prefix_cache"]
        cache_stats[router] = merged
        lines.append(
            f"{router:>16} {merged['hit_rate']:>9.3f} {merged['hits']:>6} "
            f"{merged['tokens_reused']:>11} {epochs:>7}"
        )
    assert (
        affinity_tokens["round_robin"] == affinity_tokens["prefix_affinity"]
    ), "routing policy changed generated tokens"
    perf_gate(
        cache_stats["prefix_affinity"]["hit_rate"]
        > cache_stats["round_robin"]["hit_rate"],
        "prefix_affinity must beat round_robin on cluster-wide "
        f"prefix-cache hit rate ({cache_stats['prefix_affinity']['hit_rate']:.3f} "
        f"vs {cache_stats['round_robin']['hit_rate']:.3f})",
    )
    perf_gate(
        cache_stats["prefix_affinity"]["tokens_reused"]
        > cache_stats["round_robin"]["tokens_reused"],
        "prefix_affinity must reuse more prefill tokens than round_robin",
    )

    report = "\n".join(lines)
    print("\n" + report)
    write_report(results_dir, "replicated_scaling", report)
