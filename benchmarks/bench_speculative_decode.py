"""Serving throughput: speculative decoding vs plain one-token decode.

Decode advances one token per sequence per step because every token costs
a full forward.  Speculative decoding breaks the coupling: a cheap
drafter proposes up to ``K`` tokens per sequence, the engine verifies the
whole chunk in **one** batched forward
(:meth:`~repro.llm.model.TransformerLM.verify_steps_batched`), commits
the longest prefix the target's own greedy argmax agrees with, and rolls
the rejected rows back out of the paged KV arena.  Acceptance-checked
verification makes the committed stream *identical* to plain greedy
decode — asserted below request by request — so drafting only changes
what the stream costs.

Measured: end-to-end engine tokens/s replaying the
``repetitive_long_context`` workload scenario (motif-tiled prompts — the
log-tail/boilerplate shape where most continuations already appear
verbatim earlier in the context — served at the scenario's max batch of
2, the latency-bound regime where every plain-decoded token pays full
per-step overhead) on its own arena sizing, best of ``REPEATS`` runs
per path.  Paths: plain decode, n-gram history drafting
(prompt-lookup), and induction-head drafting (the analytic induction
transformer run greedily as a second model).  Acceptance: n-gram
speculation sustains >= 1.5x plain-decode tokens/s with token-identical
output (hard-gated locally, ``REPRO_PERF_SOFT=1`` on shared CI runners);
the induction row is reported for visibility.
"""

import time

from conftest import perf_gate, write_report

from repro.core.kv_pool import KVPoolGroup
from repro.llm.config import ModelConfig
from repro.llm.induction import build_induction_model
from repro.llm.model import TransformerLM
from repro.serving import (
    BatchedEngine,
    InductionDrafter,
    NGramDrafter,
    ServingRequest,
    SpeculationConfig,
    get_scenario,
)

K = 4
REPEATS = 5
SPEEDUP_FLOOR = 1.5
HEADS, HEAD_DIM, LAYERS = 2, 16, 2


def harness_model(vocab_size: int) -> TransformerLM:
    """Eval-harness-shaped substrate: the induction-model geometry."""
    config = ModelConfig(
        vocab_size=vocab_size,
        model_dim=HEADS * HEAD_DIM,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_layers=LAYERS,
        mlp_hidden_dim=0,
        use_layernorm=False,
        seed=0,
    )
    return TransformerLM(config)


def run_trace(model, scenario, trace, speculation):
    """Replay the scenario trace; returns (elapsed, tokens, responses, stats)."""
    pools = KVPoolGroup(
        LAYERS,
        page_size=scenario.page_size,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_pages=scenario.num_pages,
    )
    engine = BatchedEngine(
        model,
        max_batch_size=scenario.max_batch_size,
        kv_pools=pools,
        speculation=speculation,
    )
    for req in trace:
        engine.submit(
            ServingRequest(
                prompt_ids=list(req.prompt_ids),
                max_new_tokens=req.max_new_tokens,
                request_id=req.request_id,
            )
        )
    start = time.perf_counter()
    responses = engine.run()
    elapsed = time.perf_counter() - start
    tokens = sum(r.num_generated for r in responses)
    assert all(r.finish_reason != "error" for r in responses)
    return elapsed, tokens, responses, engine.stats()


def best_of(model, scenario, trace, speculation):
    best = None
    for _ in range(REPEATS):
        elapsed, tokens, responses, stats = run_trace(
            model, scenario, trace, speculation
        )
        if best is None or elapsed < best[0]:
            best = (elapsed, tokens, responses, stats)
    return best


def test_speculative_decode_throughput(benchmark, results_dir):
    scenario = get_scenario("repetitive_long_context")
    trace = scenario.trace()
    vocab = scenario.spec.vocab_size
    model = harness_model(vocab)
    drafter_model = build_induction_model(vocab)

    paths = {
        "plain": None,
        "ngram": SpeculationConfig(drafter=NGramDrafter(), k=K),
        "induction": SpeculationConfig(
            drafter=InductionDrafter(drafter_model, max_context=48), k=K
        ),
    }

    def run():
        rows = {}
        for name, speculation in paths.items():
            rows[name] = best_of(model, scenario, trace, speculation)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # Verification must make every speculative stream identical to plain
    # greedy decode, request by request — that is the whole contract.
    _, _, plain_responses, _ = rows["plain"]
    reference = {r.request_id: r.token_ids for r in plain_responses}
    for name in ("ngram", "induction"):
        for response in rows[name][2]:
            assert response.token_ids == reference[response.request_id], (
                f"{name} speculation diverged from plain greedy decode on "
                f"{response.request_id}"
            )

    lines = [
        f"Speculative decode — {scenario.name} scenario, "
        f"{len(trace)} requests, k={K}, best of {REPEATS} runs",
        f"{'path':<12}{'tok/s':>10}{'steps':>8}{'accept':>9}"
        f"{'tok/step':>10}{'rollback pages':>16}",
    ]
    plain_tps = rows["plain"][1] / rows["plain"][0]
    for name, (elapsed, tokens, _responses, stats) in rows.items():
        spec = stats["speculation"]
        if spec is None:
            accept, per_step, dropped = "-", "-", "-"
        else:
            accept = f"{spec['acceptance_rate']:.2f}"
            hist = spec["tokens_per_step"]
            total = sum(hist.values())
            per_step = (
                f"{sum(k * v for k, v in hist.items()) / total:.2f}"
                if total
                else "-"
            )
            dropped = str(spec["rollback_pages_dropped"])
        lines.append(
            f"{name:<12}{tokens / elapsed:>10.0f}{stats['steps']:>8}"
            f"{accept:>9}{per_step:>10}{dropped:>16}"
        )
    report = "\n".join(lines)
    write_report(results_dir, "speculative_decode_throughput", report)
    print(report)

    ngram_tps = rows["ngram"][1] / rows["ngram"][0]
    speedup = ngram_tps / plain_tps
    perf_gate(
        speedup >= SPEEDUP_FLOOR,
        f"n-gram speculative decode speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR:.1f}x floor on {scenario.name}",
    )
