"""Fig. 13: application-level accuracy (F1) versus KV cache ratio.

The paper evaluates its pruning algorithm on LongBench HotpotQA and
NarrativeQA with LongChat-7B; this benchmark runs the same comparison on
the synthetic HotpotQA-like and NarrativeQA-like tasks with the
hand-constructed induction model (see DESIGN.md for the substitution).

By default the prompts are scaled down (~600 / ~900 tokens instead of
1.5k / 2.5k) so the benchmark finishes in a couple of minutes; set
``REPRO_FULL_SCALE=1`` for paper-scale prompts.
"""

import pytest
from conftest import quick_mode, write_report

from repro.eval import (
    build_task_model,
    cache_ratio_sweep,
    generate_dataset,
    hotpotqa_like_spec,
    narrativeqa_like_spec,
    sweep_to_table,
)

POLICIES = ["full", "unicaim", "snapkv", "streaming_llm"]
CACHE_RATIOS = [0.1, 0.2, 0.4, 0.8]


def run_dataset(spec):
    dataset = generate_dataset(spec)
    model = build_task_model(dataset.tokenizer)
    return dataset.name, cache_ratio_sweep(
        dataset, POLICIES, CACHE_RATIOS, model=model
    )


@pytest.mark.parametrize(
    "spec_builder,quick_prompt,full_prompt",
    [
        (hotpotqa_like_spec, 600, 1500),
        (narrativeqa_like_spec, 900, 2500),
    ],
    ids=["hotpotqa_like", "narrativeqa_like"],
)
def test_fig13_accuracy_vs_cache_ratio(
    benchmark, results_dir, spec_builder, quick_prompt, full_prompt
):
    prompt_length = quick_prompt if quick_mode() else full_prompt
    examples = 3 if quick_mode() else 8
    spec = spec_builder(num_examples=examples, prompt_length=prompt_length, seed=0)

    name, sweep = benchmark.pedantic(run_dataset, args=(spec,), rounds=1, iterations=1)

    table = sweep_to_table(sweep)
    header = (
        f"Fig. 13 — F1 vs KV cache ratio on {name} "
        f"({examples} examples, ~{prompt_length}-token prompts)"
    )
    write_report(results_dir, f"fig13_accuracy_{name.replace('-', '_')}", header + "\n" + table)

    f1 = {
        policy: [evaluation.mean_f1 for evaluation in evaluations]
        for policy, evaluations in sweep.items()
    }
    # Shape checks mirroring the paper's qualitative claims:
    # the full cache is the upper bound; the hybrid static-dynamic policy
    # stays close to it even at low cache ratios and never loses to the
    # fixed-pattern StreamingLLM baseline (averaged over the sweep).
    assert min(f1["full"]) == pytest.approx(1.0)
    assert f1["unicaim"][-1] >= 0.9
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(f1["unicaim"]) >= mean(f1["streaming_llm"]) - 0.05
    assert mean(f1["unicaim"]) >= 0.5


KV_DTYPE_POLICIES = ["full", "unicaim", "h2o", "quest"]
KV_DTYPE_RATIO = [0.4]
KV_DTYPE_TOLERANCE = 0.05


def test_fig13_accuracy_within_tolerance_at_int8_kv_dtype(results_dir):
    """Storage quantisation gate: int8 KV pages cost ≤0.05 mean F1.

    Runs a reduced Fig-13 grid (four policies spanning every storage
    backend, one mid-sweep cache ratio) at fp64, int8 and int4 storage
    via the eval harness's ``kv_dtype`` knob, with everything else —
    model, dataset, policies, batching — identical.  int8 is the hard
    accuracy gate of ROADMAP item 4; int4 is reported for the capacity/
    accuracy trade-off table but only smoke-checked (it halves the bits
    again, its tolerance is policy-dependent).
    """
    examples = 3 if quick_mode() else 6
    prompt_length = 400 if quick_mode() else 800
    spec = hotpotqa_like_spec(
        num_examples=examples, prompt_length=prompt_length, seed=0
    )
    dataset = generate_dataset(spec)
    model = build_task_model(dataset.tokenizer)

    sweeps = {
        kv_dtype: cache_ratio_sweep(
            dataset,
            KV_DTYPE_POLICIES,
            KV_DTYPE_RATIO,
            model=model,
            kv_dtype=kv_dtype,
        )
        for kv_dtype in ("fp64", "int8", "int4")
    }
    f1 = {
        kv_dtype: {
            policy: sweep[policy][0].mean_f1 for policy in KV_DTYPE_POLICIES
        }
        for kv_dtype, sweep in sweeps.items()
    }

    lines = [
        "Fig. 13 accuracy at quantised KV storage "
        f"({examples} examples, ~{prompt_length}-token prompts, "
        f"cache ratio {KV_DTYPE_RATIO[0]:.0%})",
        "",
        f"{'policy':<14}" + "".join(f"{d:>8}" for d in f1),
    ]
    for policy in KV_DTYPE_POLICIES:
        lines.append(
            f"{policy:<14}"
            + "".join(f"{f1[d][policy]:>8.3f}" for d in f1)
        )
    report = "\n".join(lines)
    write_report(results_dir, "fig13_accuracy_kv_dtype", report)
    print(report)

    for policy in KV_DTYPE_POLICIES:
        assert f1["int8"][policy] >= f1["fp64"][policy] - KV_DTYPE_TOLERANCE, (
            f"int8 storage costs {policy} more than {KV_DTYPE_TOLERANCE} F1: "
            f"{f1['fp64'][policy]:.3f} -> {f1['int8'][policy]:.3f}"
        )
        # int4 smoke floor: the task must not collapse.
        assert f1["int4"][policy] >= 0.3
