"""Fig. 13: application-level accuracy (F1) versus KV cache ratio.

The paper evaluates its pruning algorithm on LongBench HotpotQA and
NarrativeQA with LongChat-7B; this benchmark runs the same comparison on
the synthetic HotpotQA-like and NarrativeQA-like tasks with the
hand-constructed induction model (see DESIGN.md for the substitution).

By default the prompts are scaled down (~600 / ~900 tokens instead of
1.5k / 2.5k) so the benchmark finishes in a couple of minutes; set
``REPRO_FULL_SCALE=1`` for paper-scale prompts.
"""

import pytest
from conftest import quick_mode, write_report

from repro.eval import (
    build_task_model,
    cache_ratio_sweep,
    generate_dataset,
    hotpotqa_like_spec,
    narrativeqa_like_spec,
    sweep_to_table,
)

POLICIES = ["full", "unicaim", "snapkv", "streaming_llm"]
CACHE_RATIOS = [0.1, 0.2, 0.4, 0.8]


def run_dataset(spec):
    dataset = generate_dataset(spec)
    model = build_task_model(dataset.tokenizer)
    return dataset.name, cache_ratio_sweep(
        dataset, POLICIES, CACHE_RATIOS, model=model
    )


@pytest.mark.parametrize(
    "spec_builder,quick_prompt,full_prompt",
    [
        (hotpotqa_like_spec, 600, 1500),
        (narrativeqa_like_spec, 900, 2500),
    ],
    ids=["hotpotqa_like", "narrativeqa_like"],
)
def test_fig13_accuracy_vs_cache_ratio(
    benchmark, results_dir, spec_builder, quick_prompt, full_prompt
):
    prompt_length = quick_prompt if quick_mode() else full_prompt
    examples = 3 if quick_mode() else 8
    spec = spec_builder(num_examples=examples, prompt_length=prompt_length, seed=0)

    name, sweep = benchmark.pedantic(run_dataset, args=(spec,), rounds=1, iterations=1)

    table = sweep_to_table(sweep)
    header = (
        f"Fig. 13 — F1 vs KV cache ratio on {name} "
        f"({examples} examples, ~{prompt_length}-token prompts)"
    )
    write_report(results_dir, f"fig13_accuracy_{name.replace('-', '_')}", header + "\n" + table)

    f1 = {
        policy: [evaluation.mean_f1 for evaluation in evaluations]
        for policy, evaluations in sweep.items()
    }
    # Shape checks mirroring the paper's qualitative claims:
    # the full cache is the upper bound; the hybrid static-dynamic policy
    # stays close to it even at low cache ratios and never loses to the
    # fixed-pattern StreamingLLM baseline (averaged over the sweep).
    assert min(f1["full"]) == pytest.approx(1.0)
    assert f1["unicaim"][-1] >= 0.9
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(f1["unicaim"]) >= mean(f1["streaming_llm"]) - 0.05
    assert mean(f1["unicaim"]) >= 0.5
