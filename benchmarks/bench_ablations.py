"""Ablation benchmarks for the design choices DESIGN.md calls out.

* CAM sense margin versus V_TH variation (how much device variation the
  approximate top-k tolerates).
* k-configurability: the CAM reference current is the only thing that
  changes with k (no extra hardware), and recall stays high across k.
* ADC resolution sweep for the current-domain read-out.
* Cell bit-width sweep for the approximate selector's fidelity.
"""

import numpy as np
from conftest import write_report

from repro.circuits import ADCParams, ArrayConfig, CAMMode, CurrentDomainCIM, UniCAIMArray
from repro.core.dynamic_pruning import (
    CAMApproximateSelector,
    CAMSelectorConfig,
    sweep_selector_fidelity,
)
from repro.devices import VariationModel


def cam_recall_under_variation(vth_sigma: float, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    config = ArrayConfig(
        num_rows=128, dim=128, key_bits=1, query_bits=1,
        variation=VariationModel(vth_sigma=vth_sigma, seed=seed),
    )
    array = UniCAIMArray(config)
    keys = rng.choice([-1.0, 1.0], size=(128, 128))
    array.load_keys(keys, pre_quantized=True)
    cam = CAMMode(array)
    recalls = []
    for _ in range(10):
        query = rng.choice([-1.0, 1.0], size=128)
        macs = keys @ query
        exact = set(np.argsort(-macs)[:16].tolist())
        selected = set(int(r) for r in cam.select_topk(query, 16, pre_quantized=True).selected_rows)
        recalls.append(len(exact & selected) / 16)
    return float(np.mean(recalls))


def test_ablation_cam_variation_tolerance(benchmark, results_dir):
    sigmas = [0.0, 0.027, 0.054, 0.108, 0.216]
    recalls = benchmark.pedantic(
        lambda: [cam_recall_under_variation(s) for s in sigmas], rounds=1, iterations=1
    )
    lines = ["Ablation — CAM top-16 recall vs FeFET V_TH variation (128 keys, d=128)",
             f"{'sigma (mV)':>10}  {'recall':>7}"]
    for sigma, recall in zip(sigmas, recalls):
        lines.append(f"{sigma * 1e3:>10.0f}  {recall:>7.2f}")
    write_report(results_dir, "ablation_cam_variation", "\n".join(lines))
    assert recalls[0] >= 0.95
    assert recalls[2] >= 0.8          # paper's 54 mV point stays accurate
    assert recalls[-1] <= recalls[0]  # recall degrades gracefully


def test_ablation_k_configurability(benchmark, results_dir):
    rng = np.random.default_rng(1)
    config = ArrayConfig(num_rows=96, dim=64, key_bits=1, query_bits=1)
    array = UniCAIMArray(config)
    keys = rng.choice([-1.0, 1.0], size=(96, 64))
    array.load_keys(keys, pre_quantized=True)
    cam = CAMMode(array)

    def sweep():
        results = []
        for k in (4, 8, 16, 32, 64):
            query = rng.choice([-1.0, 1.0], size=64)
            reference = cam.configure_k(k)
            result = cam.select_topk(query, k, pre_quantized=True)
            macs = keys @ query
            kth = np.sort(macs)[::-1][k - 1]
            ok = all(macs[row] >= kth for row in result.selected_rows)
            results.append((k, reference, result.k, ok))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — k is configured purely by programming I_Ref1 = (k+1) I_dyn",
             f"{'k':>4}  {'I_Ref1 (uA)':>12}  {'selected':>9}  {'valid':>6}"]
    for k, reference, selected, ok in results:
        lines.append(f"{k:>4}  {reference * 1e6:>12.1f}  {selected:>9}  {str(ok):>6}")
    write_report(results_dir, "ablation_k_configurability", "\n".join(lines))
    assert all(ok for _, _, _, ok in results)


def test_ablation_adc_resolution(benchmark, results_dir):
    rng = np.random.default_rng(2)
    config = ArrayConfig(num_rows=32, dim=128, key_bits=1, query_bits=1)
    array = UniCAIMArray(config)
    array.load_keys(rng.choice([-1.0, 1.0], size=(32, 128)), pre_quantized=True)
    query = rng.choice([-1.0, 1.0], size=128)

    def sweep():
        errors = {}
        for bits in (6, 8, 10, 12):
            cim = CurrentDomainCIM(array, ADCParams(resolution_bits=bits))
            readout = cim.compute_scores(query, rows=list(range(32)), pre_quantized=True)
            errors[bits] = readout.rms_error
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — MAC read-out RMS error vs ADC resolution (d = 128)",
             f"{'bits':>5}  {'RMS error (MAC units)':>22}"]
    for bits, error in errors.items():
        lines.append(f"{bits:>5}  {error:>22.3f}")
    write_report(results_dir, "ablation_adc_resolution", "\n".join(lines))
    assert errors[12] <= errors[6]
    assert errors[10] < 2.0  # the paper's 10-bit SAR keeps the error < 2 LSB


def test_ablation_cell_bitwidth_selector_fidelity(benchmark, results_dir):
    rng = np.random.default_rng(3)
    keys = rng.normal(size=(256, 128))
    queries = [rng.normal(size=128) for _ in range(20)]

    def sweep():
        recalls = {}
        for key_bits, query_bits in ((1, 1), (2, 1), (3, 2), (4, 2)):
            selector = CAMApproximateSelector(
                CAMSelectorConfig(key_bits=key_bits, query_bits=query_bits)
            )
            recalls[(key_bits, query_bits)] = float(
                sweep_selector_fidelity(selector, queries, keys, k=32).mean()
            )
        return recalls

    recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — approximate top-32 recall vs cell precision (256 keys, d=128)",
             f"{'key bits':>9}  {'query bits':>10}  {'recall':>7}"]
    for (kb, qb), recall in recalls.items():
        lines.append(f"{kb:>9}  {qb:>10}  {recall:>7.2f}")
    write_report(results_dir, "ablation_cell_bitwidth", "\n".join(lines))
    assert recalls[(3, 2)] >= recalls[(1, 1)]
    assert recalls[(3, 2)] >= 0.75
