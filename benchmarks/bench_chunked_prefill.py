"""Inter-token latency under a mid-stream long prompt: chunked vs unchunked.

The head-of-line blocking scenario the iteration-level scheduler removes:
four sequences are decoding steadily when a prompt 16x longer than theirs
arrives.  The unchunked engine prefills the whole newcomer inside one step,
so every in-flight sequence's next token waits behind ~1.5k tokens of
prefill GEMMs; the chunked engine absorbs the prompt in
``max_tokens_per_step``-bounded chunks between decode steps, so in-flight
inter-token latency barely moves.

Measured: the p95 gap between consecutive tokens of the four active
sequences, from the step after the long prompt is submitted until it
completes.  Acceptance: chunked p95 is >= 3x lower than unchunked
(hard-gated locally, ``REPRO_PERF_SOFT=1`` on shared CI runners).
"""

import time

import numpy as np
from conftest import perf_gate, write_report

from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import BatchedEngine, ServingRequest

SHORT_PROMPT_LEN = 96
LONG_PROMPT_LEN = 16 * SHORT_PROMPT_LEN
NUM_ACTIVE = 4
ACTIVE_NEW_TOKENS = 48
CHUNK_BUDGET = 64  # tokens per step: 4 decodes + 60-token prefill chunks


def serving_model() -> TransformerLM:
    """Same memory-bound serving substrate as ``bench_serving_throughput``."""
    config = ModelConfig(
        vocab_size=32768,
        model_dim=512,
        num_heads=8,
        head_dim=64,
        num_layers=1,
        mlp_hidden_dim=0,
        seed=0,
    )
    return TransformerLM(config)


def make_prompts(vocab_size: int):
    rng = np.random.default_rng(4)
    short = [
        list(map(int, rng.integers(0, vocab_size, size=SHORT_PROMPT_LEN)))
        for _ in range(NUM_ACTIVE)
    ]
    long_prompt = list(map(int, rng.integers(0, vocab_size, size=LONG_PROMPT_LEN)))
    return short, long_prompt


def measure_inter_token_p95(model, short, long_prompt, max_tokens_per_step):
    """p95 seconds between consecutive decode steps of the active batch
    while the long prompt is absorbed.

    Every engine step advances each surviving active sequence by exactly
    one token, so the step-boundary gap *is* each sequence's inter-token
    latency; the unchunked engine's gap balloons on the step that prefills
    the newcomer whole.
    """
    engine = BatchedEngine(
        model,
        max_batch_size=NUM_ACTIVE + 1,
        prefix_caching=False,
        max_tokens_per_step=max_tokens_per_step,
    )
    for prompt in short:
        engine.submit(
            ServingRequest(prompt_ids=prompt, max_new_tokens=ACTIVE_NEW_TOKENS)
        )
    # Warm up until all four short prompts are decoding (the chunked
    # engine needs several steps to absorb them under the budget).
    warmup = 0
    while engine.num_active < NUM_ACTIVE:
        engine.step()
        warmup += 1
        assert warmup < 100, "short prompts never finished prefilling"

    engine.submit(ServingRequest(prompt_ids=long_prompt, max_new_tokens=1))
    gaps = []
    last = time.perf_counter()
    # Observe inter-token gaps until the long prompt has fully prefilled
    # (plus one step so its own first decode is included in the window).
    while engine.num_prefilling or engine.num_pending:
        engine.step()
        now = time.perf_counter()
        gaps.append(now - last)
        last = now
    engine.run()
    return float(np.percentile(gaps, 95)), len(gaps), engine


def test_chunked_prefill_inter_token_latency(benchmark, results_dir):
    model = serving_model()
    short, long_prompt = make_prompts(model.config.vocab_size)

    def run():
        unchunked_p95, unchunked_steps, _ = measure_inter_token_p95(
            model, short, long_prompt, max_tokens_per_step=None
        )
        chunked_p95, chunked_steps, engine = measure_inter_token_p95(
            model, short, long_prompt, max_tokens_per_step=CHUNK_BUDGET
        )
        return unchunked_p95, unchunked_steps, chunked_p95, chunked_steps, engine

    unchunked_p95, unchunked_steps, chunked_p95, chunked_steps, engine = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    speedup = unchunked_p95 / chunked_p95
    scheduler = engine.stats()["scheduler"]
    lines = [
        "Chunked prefill — p95 inter-token latency of "
        f"{NUM_ACTIVE} active decodes while a {LONG_PROMPT_LEN}-token prompt "
        f"({LONG_PROMPT_LEN // SHORT_PROMPT_LEN}x longer) is admitted mid-stream",
        f"unchunked (whole-prompt prefill) : {unchunked_p95 * 1e3:8.1f} ms p95 "
        f"({unchunked_steps} steps observed)",
        f"chunked (budget {CHUNK_BUDGET} tok/step)  : {chunked_p95 * 1e3:8.1f} ms p95 "
        f"({chunked_steps} steps observed)",
        f"p95 inter-token speedup          : {speedup:8.2f}x",
        f"scheduler: {scheduler['prefill_chunks_scheduled']} chunks, "
        f"{scheduler['prefill_tokens_scheduled']} prefill tokens scheduled, "
        f"{scheduler['chunked_prompts']} chunked prompt(s)",
    ]
    write_report(results_dir, "chunked_prefill_latency", "\n".join(lines))
    print("\n".join(lines))
    assert scheduler["chunked_prompts"] >= 1  # the knob actually chunked
    perf_gate(
        speedup >= 3.0,
        f"chunked p95 inter-token speedup {speedup:.2f}x below the 3x floor",
    )
