"""Fig. 12: decoding latency breakdown and scaling with sequence lengths."""

from conftest import write_report

from repro.analysis import fig12_latency
from repro.energy import DesignPoint


def test_fig12_latency_breakdown_and_sweep(benchmark, results_dir):
    data = benchmark(fig12_latency)

    lines = ["Fig. 12(a) — per-decoding-step latency at the reference workload",
             f"{'design':>22}  {'array':>8}  {'ADC':>8}  {'top-k':>8}  {'CAM':>8}  {'total':>8}  (ns)"]
    for design, breakdown in data["breakdowns"].items():
        lines.append(
            f"{design.value:>22}  {breakdown.array * 1e9:>8.1f}  {breakdown.adc * 1e9:>8.1f}"
            f"  {breakdown.topk * 1e9:>8.1f}  {breakdown.cam * 1e9:>8.1f}"
            f"  {breakdown.total * 1e9:>8.1f}"
        )

    dense = data["breakdowns"][DesignPoint.NO_PRUNING]
    conventional = data["breakdowns"][DesignPoint.CONVENTIONAL_DYNAMIC]
    ours = data["breakdowns"][DesignPoint.UNICAIM_1BIT]
    lines.append("")
    lines.append(f"dense: {dense.total * 1e9:.0f} ns (paper: 90 ns)")
    lines.append(f"conventional dynamic: {conventional.total * 1e9:.0f} ns (paper: ~104 ns)")
    lines.append(f"UniCAIM: {ours.total * 1e9:.0f} ns (paper: ~22 ns)")

    lines.append("")
    lines.append("Fig. 12(b) — generation latency (us) along a joint input/output sweep")
    lengths = list(zip(data["input_lengths"], data["output_lengths"]))
    lines.append("lengths: " + ", ".join(f"({i},{o})" for i, o in lengths))
    for design, series in data["joint_sweep"].items():
        values = "  ".join(f"{value * 1e6:>9.2f}" for value in series)
        lines.append(f"{design.value:>22}  {values}")
    write_report(results_dir, "fig12_latency", "\n".join(lines))

    # Paper shapes: conventional dynamic pruning is *slower* than dense,
    # UniCAIM is several times faster, and the speed-up grows with length.
    assert conventional.total > dense.total
    assert ours.total < 0.4 * dense.total
    dense_series = data["joint_sweep"][DesignPoint.NO_PRUNING]
    ours_series = data["joint_sweep"][DesignPoint.UNICAIM_1BIT]
    assert dense_series[-1] / ours_series[-1] > dense_series[0] / ours_series[0]
