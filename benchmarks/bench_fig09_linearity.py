"""Fig. 9: current-domain I_SL linearity under FeFET device variation."""

from conftest import write_report

from repro.analysis import fig9_linearity


def test_fig9_current_domain_linearity(benchmark, results_dir):
    report = benchmark(fig9_linearity, dim=128, vth_sigma=0.054, seed=0, num_points=65)

    lines = ["Fig. 9 — I_SL versus signed MAC with sigma(V_TH) = 54 mV (d = 128)",
             f"linear fit: slope = {report.slope:.3e} A/MAC, "
             f"intercept = {report.intercept:.3e} A",
             f"R^2 = {report.r_squared:.6f}",
             f"max deviation from fit = {report.max_deviation:.3e} A",
             "",
             f"{'MAC':>6}  {'I_SL (uA)':>12}"]
    for mac, current in zip(report.mac_values[::4], report.currents[::4]):
        lines.append(f"{mac:>6.0f}  {current * 1e6:>12.3f}")
    write_report(results_dir, "fig09_linearity", "\n".join(lines))

    assert report.r_squared > 0.99
    assert report.slope < 0  # higher similarity -> lower current by design
