"""Per-step decode cost: group-vectorized vs per-sequence policy loop.

The decode hot path at batch 16: every engine step used to dispatch one
``decode_step`` per sequence — B python calls each re-doing its own slot
resolution, gather, score GEMV, masked softmax and bookkeeping on tiny
arrays.  The group-vectorized path executes each policy-homogeneous span
as **one** ``decode_step_group`` call per layer: one padded multi-sequence
gather through the shared page arena, one batched score GEMM, one batched
masked attention, one masked-argmin eviction / argsort selection for the
whole span — per-step dispatch cost is O(groups), not O(batch).

Measured: mean wall-clock per decode step (best of ``REPEATS`` runs per
path, to shrug off noisy-neighbour spikes) over a warm batch of 16
same-policy sequences on the evaluation-harness-shaped substrate — the
induction-model geometry (2 layers, 2 heads, no MLP) and the short
budget-pruned prompts of the synthetic QA workload, stored in a shared
paged KV arena as the serving engine runs it.  Generated tokens are
asserted identical between the two paths.  Acceptance: the vectorized
path is >= 2x cheaper per step for the paper's UniCAIM policy (hard-gated
locally, ``REPRO_PERF_SOFT=1`` on shared CI runners); the other policy
rows are reported for visibility.
"""

import time

import numpy as np
from conftest import perf_gate, write_report

from repro.core.kv_pool import KVPoolGroup
from repro.eval.harness import POLICY_NAMES, build_policy_factory
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM

BATCH = 16
PROMPT_LEN = 32
CACHE_RATIO = 0.75
DECODE_STEPS = 40
REPEATS = 3
GATED_POLICY = "unicaim"
SPEEDUP_FLOOR = 2.0
HEADS, HEAD_DIM, LAYERS = 2, 16, 2


def harness_model() -> TransformerLM:
    """Eval-harness-shaped substrate: the induction-model geometry."""
    config = ModelConfig(
        vocab_size=256,
        model_dim=HEADS * HEAD_DIM,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_layers=LAYERS,
        mlp_hidden_dim=0,
        use_layernorm=False,
        seed=0,
    )
    return TransformerLM(config)


def build_batch(model, policy_name):
    """Prefill a fresh batch of identical-policy sequences on a shared
    paged arena (the serving engine's storage layout)."""
    rng = np.random.default_rng(11)
    factory = build_policy_factory(
        policy_name, prompt_length=PROMPT_LEN, cache_ratio=CACHE_RATIO
    )
    pools = KVPoolGroup(
        LAYERS, page_size=16, num_heads=HEADS, head_dim=HEAD_DIM,
        num_pages=2048,
    )
    prompts = [
        list(map(int, rng.integers(0, model.config.vocab_size, size=PROMPT_LEN)))
        for _ in range(BATCH)
    ]
    stacks = [model.make_policies(factory, kv_pools=pools) for _ in range(BATCH)]
    logits, _ = model.prefill_batched(prompts, stacks)
    tokens = [int(np.argmax(row)) for row in logits]
    return stacks, tokens


def time_decode(model, policy_name, vectorize):
    """Mean seconds per decode step and the generated token trace."""
    stacks, tokens = build_batch(model, policy_name)
    positions = [PROMPT_LEN] * BATCH
    trace = []
    start = time.perf_counter()
    for _ in range(DECODE_STEPS):
        logits = model.decode_steps_batched(
            tokens, positions, stacks, vectorize=vectorize
        )
        tokens = [int(np.argmax(row)) for row in logits]
        positions = [p + 1 for p in positions]
        trace.append(list(tokens))
    elapsed = time.perf_counter() - start
    return elapsed / DECODE_STEPS, trace


def best_of(model, policy_name, vectorize):
    costs, traces = zip(
        *(time_decode(model, policy_name, vectorize) for _ in range(REPEATS))
    )
    for trace in traces[1:]:
        assert trace == traces[0], f"{policy_name}: non-deterministic decode"
    return min(costs), traces[0]


def test_group_decode_step_cost(benchmark, results_dir):
    model = harness_model()

    def run():
        rows = {}
        for name in POLICY_NAMES:
            loop_cost, loop_trace = best_of(model, name, vectorize=False)
            group_cost, group_trace = best_of(model, name, vectorize=True)
            assert group_trace == loop_trace, (
                f"{name}: grouped decode diverged from the per-sequence loop"
            )
            rows[name] = (loop_cost, group_cost)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Group-vectorized decode — per-step decode cost, batch {BATCH}, "
        f"{PROMPT_LEN}-token prompts, cache ratio {CACHE_RATIO:.0%}, "
        f"{DECODE_STEPS} steps, best of {REPEATS} runs",
        f"{'policy':<16}{'per-seq loop':>14}{'grouped':>12}{'speedup':>10}",
    ]
    for name, (loop_cost, group_cost) in rows.items():
        lines.append(
            f"{name:<16}{loop_cost * 1e3:>11.2f} ms{group_cost * 1e3:>9.2f} ms"
            f"{loop_cost / group_cost:>9.2f}x"
        )
    report = "\n".join(lines)
    write_report(results_dir, "group_decode_step_cost", report)
    print(report)

    loop_cost, group_cost = rows[GATED_POLICY]
    speedup = loop_cost / group_cost
    perf_gate(
        speedup >= SPEEDUP_FLOOR,
        f"grouped decode speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor for the {GATED_POLICY} policy",
    )
