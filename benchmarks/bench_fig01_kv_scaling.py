"""Fig. 1(b): KV cache size and attention latency versus sequence length."""

from conftest import write_report

from repro.analysis import fig1_kv_scaling


def test_fig1_kv_scaling(benchmark, results_dir):
    points = benchmark(fig1_kv_scaling)

    lines = ["Fig. 1(b) — KV cache size and dense-attention latency vs sequence length",
             f"{'seq len':>10}  {'KV cache (GiB)':>15}  {'attention latency (us)':>24}"]
    for point in points:
        lines.append(
            f"{point.sequence_length:>10}  {point.kv_cache_gib:>15.2f}  "
            f"{point.attention_latency_us:>24.1f}"
        )
    lines.append(f"Llama-2-7B weights: {points[0].weight_gib:.1f} GiB")
    report = "\n".join(lines)
    write_report(results_dir, "fig01_kv_scaling", report)

    # Shape checks: both curves grow linearly and the KV cache overtakes the
    # model weights at long context, which is the paper's motivation.
    assert points[-1].kv_cache_gib > points[0].weight_gib
    assert points[-1].attention_latency_us > points[0].attention_latency_us
