"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and writes
a plain-text report under ``benchmarks/results/`` so the reproduced numbers
can be inspected after the run (pytest captures stdout).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a benchmark's reproduced table/series."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")


def quick_mode() -> bool:
    """Benchmarks default to reduced problem sizes; set REPRO_FULL_SCALE=1
    to run the paper-scale configurations (slower)."""
    return os.environ.get("REPRO_FULL_SCALE", "0") != "1"


def perf_gate(condition: bool, message: str) -> None:
    """Assert a wall-clock perf floor, softened on noisy shared runners.

    Timing ratios are meaningful on a quiet dev box but flake on loaded CI
    machines (noisy neighbours, single-round measurements).  With
    ``REPRO_PERF_SOFT=1`` (set by the CI workflow) a missed floor is
    reported in the job log instead of failing the build; locally the
    floor stays a hard assertion.
    """
    if condition:
        return
    if os.environ.get("REPRO_PERF_SOFT", "0") == "1":
        print(f"PERF GATE SOFT-FAILED: {message}")
        return
    raise AssertionError(message)
