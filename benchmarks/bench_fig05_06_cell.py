"""Figs. 5-6: UniCAIM cell truth tables for signed 1-bit and multilevel data."""

import numpy as np
from conftest import write_report

from repro.circuits import CellParams, UniCAIMCell, signed_levels


def build_truth_tables():
    params = CellParams()
    tables = {}

    # Fig. 5(d): 1-bit key x 1-bit query.
    rows = []
    for key in (-1.0, 0.0, 1.0):
        cell = UniCAIMCell(params, key_bits=2)
        cell.write_key(key)
        for query in (-1, 1):
            rows.append((key, query, cell.sense_current(query)))
    tables["1bit"] = rows

    # Fig. 6(b): 3-bit key x 1-bit query.
    rows = []
    for key in signed_levels(3):
        cell = UniCAIMCell(params, key_bits=3)
        cell.write_key(float(key))
        for query in (-1, 1):
            rows.append((float(key), query, cell.sense_current(query)))
    tables["3bit_key"] = rows

    # Fig. 6(d): 2-bit key x 2-bit query via bitwise expansion.
    rows = []
    for key in signed_levels(2):
        cell = UniCAIMCell(params, key_bits=2)
        cell.write_key(float(key))
        for query in signed_levels(2):
            rows.append((float(key), float(query),
                         cell.sense_current_multilevel(float(query), query_bits=2)))
    tables["2bit_both"] = rows
    return tables


def test_fig5_6_cell_truth_tables(benchmark, results_dir):
    tables = benchmark(build_truth_tables)

    lines = ["Figs. 5-6 — UniCAIM cell truth tables (I_SL in uA; lower = more similar)"]
    for name, rows in tables.items():
        lines.append(f"\n[{name}]")
        lines.append(f"{'key':>6}  {'query':>6}  {'I_SL (uA)':>10}")
        for key, query, current in rows:
            lines.append(f"{key:>6.2f}  {query:>6.2f}  {current * 1e6:>10.3f}")
    write_report(results_dir, "fig05_06_cell_truth_tables", "\n".join(lines))

    # The defining property: I_SL is monotone decreasing in key*query.
    for rows in tables.values():
        products = np.array([k * q for k, q, _ in rows])
        currents = np.array([c for _, _, c in rows])
        order = np.argsort(products)
        assert np.all(np.diff(currents[order]) <= 1e-12)
