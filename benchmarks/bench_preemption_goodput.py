"""Preemption goodput: preempt/resume vs the fail-closed OOM baseline.

Both engines replay the same named multi-tenant trace against the same
undersized KV arena with ``admission="optimistic"`` — short prompts admit
freely, long decodes grow far past the arena, so page pressure hits
mid-flight.  The fail-closed baseline (``preemption=False``) converts
that pressure into ``decode_page_exhaustion`` errors whose generated
tokens count for nothing; the preemptive engine parks victims and
resumes them, completing every request.

**Goodput** here is SLO-attaining completed tokens delivered for the
same offered trace (both engines face an identical open-loop workload,
so useful tokens out is the machine-independent measure; tokens/sec of
wall clock is reported alongside).  The acceptance bar is the preemptive
engine delivering >= 1.5x the fail-closed goodput, with token-identical
output for every request both engines complete — preemption must never
change what a request would have generated.

The two named scenarios double as regression gates: every request
completes, zero errors, and preemption actually engaged (a scenario that
stops creating pressure silently stops testing the preemption path).
"""

from conftest import perf_gate, write_report

from repro.core.kv_pool import KVPoolGroup
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import (
    BatchedEngine,
    SchedulerPolicy,
    Scenario,
    WorkloadReport,
    get_scenario,
    run_workload,
)

HEADS, HEAD_DIM, LAYERS = 2, 8, 2


def serving_model() -> TransformerLM:
    config = ModelConfig(
        vocab_size=89,
        model_dim=HEADS * HEAD_DIM,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        num_layers=LAYERS,
        mlp_hidden_dim=24,
        seed=5,
    )
    return TransformerLM(config)


def scenario_engine(
    model: TransformerLM, scenario: Scenario, *, preemption: bool
) -> BatchedEngine:
    return BatchedEngine(
        model,
        max_batch_size=scenario.max_batch_size,
        kv_pools=KVPoolGroup(
            LAYERS,
            page_size=scenario.page_size,
            num_heads=HEADS,
            head_dim=HEAD_DIM,
            num_pages=scenario.num_pages,
        ),
        scheduler_policy=SchedulerPolicy(
            preemption=preemption, admission="optimistic"
        ),
    )


def goodput_tokens(report: WorkloadReport) -> int:
    return sum(tenant.goodput_tokens for tenant in report.tenants)


def replay_both(scenario: Scenario):
    """Replay the scenario trace fail-closed and preemptive; return
    ((report, engine), (report, engine))."""
    model = serving_model()
    trace = scenario.trace()
    out = []
    for preemption in (False, True):
        engine = scenario_engine(model, scenario, preemption=preemption)
        out.append((run_workload(engine, trace), engine))
    return trace, out[0], out[1]


def format_comparison(scenario, fail_closed, preemptive) -> str:
    lines = [
        f"scenario: {scenario.name}",
        f"  arena: {scenario.num_pages} pages x {scenario.page_size} "
        f"tokens/page per layer",
        "fail-closed baseline:",
        "  " + fail_closed.summary().replace("\n", "\n  "),
        f"  errors by cause: {fail_closed.errors_by_cause}",
        "preemptive engine:",
        "  " + preemptive.summary().replace("\n", "\n  "),
        f"  preemption: {preemptive.engine_stats['preemption']}",
        f"goodput tokens: {goodput_tokens(preemptive)} vs "
        f"{goodput_tokens(fail_closed)} "
        f"({goodput_tokens(preemptive) / max(goodput_tokens(fail_closed), 1):.2f}x)",
    ]
    return "\n".join(lines)


def assert_token_identical(trace, fc_engine, pr_engine) -> int:
    """Requests completed by BOTH engines must have identical tokens."""
    both = 0
    for req in trace:
        a = fc_engine.response(req.request_id)
        b = pr_engine.response(req.request_id)
        if a.finish_reason != "error" and b.finish_reason != "error":
            assert a.token_ids == b.token_ids, req.request_id
            both += 1
    return both


def test_preemption_goodput_vs_fail_closed(results_dir):
    scenario = get_scenario("bursty_multi_tenant")
    trace, (fc_report, fc_engine), (pr_report, pr_engine) = replay_both(
        scenario
    )

    # Tentpole acceptance: overload never surfaces as page-exhaustion
    # errors once preemption is on.
    assert pr_report.errors == 0
    assert pr_report.completed == pr_report.submitted == len(trace)
    assert pr_engine.stats()["preemption"]["preemptions"] > 0
    # The baseline really is fail-closed under the same load.
    assert fc_report.errors > 0
    assert set(fc_report.errors_by_cause) <= {
        "decode_page_exhaustion", "prefill_failed"
    }
    # Preempt/resume is invisible in the output.
    both = assert_token_identical(trace, fc_engine, pr_engine)
    assert both == fc_report.completed

    text = format_comparison(scenario, fc_report, pr_report)
    write_report(results_dir, "preemption_goodput", text)
    print("\n" + text)

    ratio = goodput_tokens(pr_report) / max(goodput_tokens(fc_report), 1)
    perf_gate(
        ratio >= 1.5,
        f"preemptive goodput only {ratio:.2f}x fail-closed (need >= 1.5x)",
    )


def _scenario_regression(name: str, results_dir) -> None:
    scenario = get_scenario(name)
    model = serving_model()
    engine = scenario_engine(model, scenario, preemption=True)
    report = run_workload(engine, scenario.trace())

    assert report.errors == 0, report.errors_by_cause
    assert report.completed == report.submitted
    stats = engine.stats()["preemption"]
    assert stats["parked"] == 0
    text = (
        f"scenario: {scenario.name}\n{report.summary()}\n"
        f"preemption: {stats}"
    )
    write_report(results_dir, f"scenario_{name}", text)
    print("\n" + text)
    # The scenario must keep the preemption path hot to gate anything.
    perf_gate(
        stats["preemptions"] > 0,
        f"scenario {name} no longer triggers preemption",
    )


def test_scenario_bursty_multi_tenant(results_dir):
    _scenario_regression("bursty_multi_tenant", results_dir)


def test_scenario_shared_prefix_overload(results_dir):
    _scenario_regression("shared_prefix_overload", results_dir)
