"""Time-to-first-token: batched padding-free prefill + shared-prefix reuse.

The serving workload this PR targets: many requests arriving together whose
prompts share a long common prefix (a system prompt / shared document) plus
a short per-user suffix.  PR 1's engine prefilled every admitted request
from scratch, one at a time, so time-to-first-token (TTFT) grew with the
*total* prompt tokens of the batch.  The admission pipeline now (a) packs
the batch into one padding-free prefill (one Q/K/V GEMM per layer across
all prompts' tokens) and (b) computes the shared prefix once, restoring it
for the other requests from the engine's ``PrefixCache``.

The acceptance bar is a >= 2x lower mean TTFT than per-request prefill on a
16-request shared-prefix workload; the report also states the prefill-GEMM
FLOP savings implied by the reused token count.
"""

import time

import numpy as np
from conftest import perf_gate, write_report

from repro.core.config import PruningConfig
from repro.core.hybrid import UniCAIMPolicy
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import BatchedEngine, ServingRequest

NUM_REQUESTS = 16
SHARED_PREFIX_LEN = 192
UNIQUE_SUFFIX_LEN = 8


def serving_model() -> TransformerLM:
    """Same memory-bound serving substrate as ``bench_serving_throughput``."""
    config = ModelConfig(
        vocab_size=32768,
        model_dim=512,
        num_heads=8,
        head_dim=64,
        num_layers=1,
        mlp_hidden_dim=0,
        seed=0,
    )
    return TransformerLM(config)


def policy_factory(heads: int, dim: int) -> UniCAIMPolicy:
    return UniCAIMPolicy(
        heads,
        dim,
        config=PruningConfig(
            heavy_budget=96, reserved_budget=16, top_k=24,
            sink_tokens=2, recent_protect=4,
        ),
    )


def shared_prefix_prompts(vocab_size: int) -> list:
    rng = np.random.default_rng(2)
    shared = list(map(int, rng.integers(0, vocab_size, size=SHARED_PREFIX_LEN)))
    return [
        shared + list(map(int, rng.integers(0, vocab_size, size=UNIQUE_SUFFIX_LEN)))
        for _ in range(NUM_REQUESTS)
    ]


def measure_mean_ttft(model: TransformerLM, prompts, **engine_kwargs):
    """Mean seconds from run start until each request's first token.

    Every request generates exactly one token, so a request's completion
    time *is* its TTFT.
    """
    engine = BatchedEngine(
        model,
        policy_factory=policy_factory,
        max_batch_size=NUM_REQUESTS,
        **engine_kwargs,
    )
    for prompt in prompts:
        engine.submit(ServingRequest(prompt_ids=prompt, max_new_tokens=1))
    ttft = {}
    start = time.perf_counter()
    while engine.has_work:
        for response in engine.step():
            ttft[response.request_id] = time.perf_counter() - start
    assert len(ttft) == NUM_REQUESTS
    assert all(r.finish_reason == "length" for r in engine.run())
    return sum(ttft.values()) / len(ttft), engine


def prefill_gemm_flops(model: TransformerLM, tokens: int) -> int:
    """Multiply-add FLOPs of the per-token prefill GEMMs for ``tokens`` rows
    (Q/K/V + output projections and the unembedding; attention excluded)."""
    cfg = model.config
    hd = cfg.num_heads * cfg.head_dim
    per_token_layer = 2 * cfg.model_dim * (3 * hd) + 2 * hd * cfg.model_dim
    return tokens * (cfg.num_layers * per_token_layer + 2 * cfg.model_dim * cfg.vocab_size)


def test_batched_prefix_prefill_halves_ttft(benchmark, results_dir):
    model = serving_model()
    prompts = shared_prefix_prompts(model.config.vocab_size)

    def run():
        baseline, _ = measure_mean_ttft(
            model, prompts, batched_prefill=False, prefix_caching=False
        )
        batched, engine = measure_mean_ttft(model, prompts)
        return baseline, batched, engine

    baseline_s, batched_s, engine = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = baseline_s / batched_s
    cache_stats = engine.prefix_cache.stats
    total_tokens = sum(len(p) for p in prompts)
    computed_tokens = total_tokens - cache_stats.tokens_reused
    flop_savings = 1.0 - prefill_gemm_flops(model, computed_tokens) / prefill_gemm_flops(
        model, total_tokens
    )
    lines = [
        "Prefill time-to-first-token — "
        f"{NUM_REQUESTS} requests, {SHARED_PREFIX_LEN}-token shared prefix "
        f"+ {UNIQUE_SUFFIX_LEN}-token unique suffix",
        f"per-request prefill (PR 1)     : {baseline_s * 1e3:8.1f} ms mean TTFT",
        f"batched + prefix reuse         : {batched_s * 1e3:8.1f} ms mean TTFT",
        f"speedup                        : {speedup:8.2f}x",
        f"prefix cache                   : {cache_stats.hits}/{cache_stats.lookups} hits, "
        f"{cache_stats.tokens_reused}/{total_tokens} prompt tokens reused",
        f"prefill GEMM FLOP savings      : {flop_savings:8.1%}",
    ]
    write_report(results_dir, "prefill_ttft", "\n".join(lines))
    print("\n".join(lines))
    assert cache_stats.tokens_reused > 0
    perf_gate(
        speedup >= 2.0,
        f"mean TTFT speedup {speedup:.2f}x below the 2x floor",
    )
