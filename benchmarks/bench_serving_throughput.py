"""Serving throughput: batched engine scaling and policy per-step cost.

Two measurements back the serving work:

1. **Batch scaling** — tokens/sec of :class:`repro.serving.BatchedEngine`
   decoding 16 requests at batch sizes {1, 4, 16}.  Batch 1 is the seed's
   serial loop (one request after another); larger batches amortise the
   per-token model math (the float64 unembedding GEMV is memory-bound one
   sequence at a time, and turns into a compute-bound GEMM when batched —
   the classic reason serving systems batch).  The acceptance bar is
   batch-16 >= 4x batch-1.

2. **Vectorized policy vs seed** — per-step cost of
   :class:`~repro.core.hybrid.UniCAIMPolicy.decode_step` at the paper's
   circuit-default capacity (H=512, M=64 -> 576 slots) against a replica
   of the seed implementation (dict score table updated in a Python loop,
   linear ``np.nonzero`` slot scans, fancy-indexed cache copies on every
   read).
"""

import time

import numpy as np
import pytest
from conftest import perf_gate, write_report

from repro.core.config import PruningConfig
from repro.core.hybrid import UniCAIMPolicy
from repro.core.kv_pool import KVPoolGroup
from repro.core.policy import StepRecord
from repro.core.attention import sparse_attention_output
from repro.llm.config import ModelConfig
from repro.llm.model import TransformerLM
from repro.serving import BatchedEngine, ServingRequest

BATCH_SIZES = (1, 4, 16)
NUM_REQUESTS = 16
PROMPT_LEN = 8
NEW_TOKENS = 64


def serving_model() -> TransformerLM:
    """Attention-only model with a large vocabulary.

    The 32k x 512 float64 unembedding (~134 MB) makes the per-token GEMV
    memory-bound, which is representative of real LLM serving and is the
    cost batching amortises.
    """
    config = ModelConfig(
        vocab_size=32768,
        model_dim=512,
        num_heads=8,
        head_dim=64,
        num_layers=1,
        mlp_hidden_dim=0,
        seed=0,
    )
    return TransformerLM(config)


def policy_factory(heads: int, dim: int) -> UniCAIMPolicy:
    return UniCAIMPolicy(
        heads,
        dim,
        config=PruningConfig(
            heavy_budget=24, reserved_budget=8, top_k=8,
            sink_tokens=2, recent_protect=4,
        ),
    )


def measure_throughput(model: TransformerLM) -> dict:
    rng = np.random.default_rng(1)
    prompts = [
        list(map(int, rng.integers(0, model.config.vocab_size, size=PROMPT_LEN)))
        for _ in range(NUM_REQUESTS)
    ]
    tokens_per_second = {}
    paged_stats = {}
    for batch_size in BATCH_SIZES:
        for paged in (False, True) if batch_size == max(BATCH_SIZES) else (False,):
            kv_pools = None
            if paged:
                kv_pools = KVPoolGroup(
                    model.config.num_layers,
                    page_size=16,
                    num_heads=model.config.num_heads,
                    head_dim=model.config.head_dim,
                    num_pages=4096,
                )
            engine = BatchedEngine(
                model,
                policy_factory=policy_factory,
                max_batch_size=batch_size,
                kv_pools=kv_pools,
            )
            for prompt in prompts:
                engine.submit(
                    ServingRequest(prompt_ids=prompt, max_new_tokens=NEW_TOKENS)
                )
            start = time.perf_counter()
            responses = engine.run()
            elapsed = time.perf_counter() - start
            generated = sum(r.num_generated for r in responses)
            assert generated == NUM_REQUESTS * NEW_TOKENS
            if paged:
                tokens_per_second["paged"] = generated / elapsed
                paged_stats.update(engine.stats())
            else:
                tokens_per_second[batch_size] = generated / elapsed
    tokens_per_second["paged_stats"] = paged_stats
    return tokens_per_second


def test_batch16_throughput_at_least_4x_batch1(benchmark, results_dir):
    model = serving_model()
    tokens_per_second = benchmark.pedantic(
        measure_throughput, args=(model,), rounds=1, iterations=1
    )
    speedup_16 = tokens_per_second[16] / tokens_per_second[1]
    lines = [
        "Serving throughput — UniCAIM policy, "
        f"{NUM_REQUESTS} requests x {NEW_TOKENS} new tokens",
        f"{'batch':>6}  {'tokens/s':>10}  {'vs batch-1':>10}",
    ]
    for batch_size in BATCH_SIZES:
        ratio = tokens_per_second[batch_size] / tokens_per_second[1]
        lines.append(
            f"{batch_size:>6}  {tokens_per_second[batch_size]:>10.1f}  {ratio:>9.2f}x"
        )
    paged_ratio = tokens_per_second["paged"] / tokens_per_second[16]
    lines.append(
        f"{'paged':>6}  {tokens_per_second['paged']:>10.1f}  "
        f"{paged_ratio:>9.2f}x vs dense batch-16 (shared KV pool)"
    )
    stats = tokens_per_second["paged_stats"]
    pool = stats["kv_pool"]
    lines += [
        "",
        "Paged engine telemetry (batch 16, shared per-layer arenas):",
        f"  pages in use {pool['pages_in_use']} / {pool['pages_total']}"
        f"  (peak {pool['peak_pages_in_use']}), "
        f"bytes in use {pool['bytes_in_use']}",
        f"  page allocs {pool['page_allocs']}, frees {pool['page_frees']}, "
        f"CoW splits {pool['cow_splits']}, "
        f"prefix pages adopted {pool['prefix_pages_adopted']}",
        f"  storage codec {pool['codec']}, "
        f"{pool['bytes_per_token']} B/token, "
        f"fp-page fraction {pool['fp_page_fraction']:.2f}",
        f"  admission: {stats['admission']}",
    ]
    write_report(results_dir, "serving_throughput", "\n".join(lines))
    print("\n".join(lines))
    perf_gate(
        tokens_per_second[4] > tokens_per_second[1],
        "batch-4 throughput did not beat batch-1",
    )
    perf_gate(
        speedup_16 >= 4.0,
        f"batch-16 speedup {speedup_16:.2f}x below the 4x floor",
    )
    perf_gate(
        paged_ratio >= 0.8,
        f"paged batch-16 throughput {paged_ratio:.2f}x of dense "
        "(floor 0.8x — paging must not regress the decode hot path)",
    )


# ----------------------------------------------------------------------
# Vectorized policy vs a replica of the seed implementation
# ----------------------------------------------------------------------
class SeedReferencePolicy(UniCAIMPolicy):
    """Perf replica of the seed ``UniCAIMPolicy`` hot path.

    Reproduces the seed's per-step data structures and access patterns:
    a ``Dict[int, float]`` accumulated-score table updated entry by entry
    in a Python loop, an O(capacity) ``np.nonzero`` scan for every
    position -> slot lookup, Python set/list comprehensions in the
    eviction-victim choice, and a fresh fancy-indexed copy of the cache
    arrays on every read.  Results are identical; only the cost differs.
    """

    def prefill(self, keys, values, attention_matrix=None):
        super().prefill(keys, values, attention_matrix)
        self._accumulated = self.accumulated_table()

    def _scan_slot_of_position(self, token_position):
        matches = np.nonzero(
            self.cache._occupied
            & (self.cache._token_positions == token_position)
        )[0]
        if matches.size == 0:
            return None
        return int(matches[0])

    def _gather(self):
        slots = np.nonzero(self.cache._occupied)[0]
        keys, values, positions = self.cache.gather(slots)
        return (
            np.asarray(keys, dtype=np.float64),
            np.asarray(values, dtype=np.float64),
            positions,
        )

    def decode_step(self, query, key, value, position):
        query = np.asarray(query, dtype=np.float64)
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)
        evicted_position = self._seed_insert(key, value, int(position))

        keys, values, positions = self._gather()
        n = keys.shape[0]
        k = self.config.effective_top_k(n)
        selection = self.selector.select(query, keys, k)
        selected = selection.selected_indices
        output = sparse_attention_output(query, keys, values, selected, scale=self.scale)

        # Seed accumulation: dict updated in a Python loop.
        if self.config.use_softmax_scores:
            scores = np.asarray(selection.exact_scores, dtype=np.float64) * self.scale
            shifted = scores - scores.max()
            weights = np.exp(shifted)
            step_scores = weights / max(float(weights.sum()), 1e-12)
        else:
            step_scores = np.asarray(selection.scores, dtype=np.float64)
        decay = self.config.score_decay
        for idx, pos in enumerate(positions):
            pos = int(pos)
            previous = self._accumulated.get(pos, 0.0)
            self._accumulated[pos] = previous * decay + float(step_scores[idx])

        self.stats.record(
            StepRecord(
                position=int(position),
                cache_size=n,
                num_attended=int(selected.size),
                evicted_position=evicted_position,
                selected_positions=positions[selected],
            )
        )
        return output

    def _seed_insert(self, key, value, position):
        self._generated_count += 1
        if not self.cache.is_full:
            self.cache.append(key, value, position, is_heavy=False)
            self._accumulated.setdefault(position, 0.0)
            return None
        victim_position = self._seed_choose_victim(position)
        victim_slot = self._scan_slot_of_position(victim_position)
        self.cache.replace(victim_slot, key, value, position, is_heavy=False)
        self._accumulated.pop(victim_position, None)
        self._accumulated.setdefault(position, 0.0)
        return victim_position

    def _seed_choose_victim(self, incoming_position):
        _, _, positions = self._gather()
        protected = set()
        if self.config.sink_tokens > 0:
            protected.update(
                int(p) for p in positions if p < self.config.sink_tokens
            )
        if self.config.recent_protect > 0:
            threshold = incoming_position - self.config.recent_protect
            protected.update(int(p) for p in positions if p >= threshold)
        candidates = [int(p) for p in positions if int(p) not in protected]
        if not candidates:
            candidates = [int(p) for p in positions]
        scores = np.asarray(
            [self._accumulated.get(p, 0.0) for p in candidates], dtype=np.float64
        )
        order = np.lexsort((np.asarray(candidates), scores))
        return int(candidates[order[0]])


HEADS, HEAD_DIM = 1, 128  # paper circuit geometry: d=128 per head group
WARMUP_STEPS = 80
TIMED_STEPS = 200


def time_policy_steps(policy: UniCAIMPolicy) -> float:
    """Mean decode-step time (us) at the paper's 576-slot capacity."""
    rng = np.random.default_rng(5)
    config = policy.config
    n = config.cache_capacity + 64
    keys = rng.normal(size=(n, HEADS, HEAD_DIM))
    values = rng.normal(size=(n, HEADS, HEAD_DIM))
    attn = rng.normal(size=(HEADS, n, n))
    policy.prefill(keys, values, attn)
    position = n
    for _ in range(WARMUP_STEPS):  # fill the M reserved slots
        policy.decode_step(
            rng.normal(size=(HEADS, HEAD_DIM)),
            rng.normal(size=(HEADS, HEAD_DIM)),
            rng.normal(size=(HEADS, HEAD_DIM)),
            position,
        )
        position += 1
    queries = rng.normal(size=(TIMED_STEPS, HEADS, HEAD_DIM))
    new_keys = rng.normal(size=(TIMED_STEPS, HEADS, HEAD_DIM))
    new_values = rng.normal(size=(TIMED_STEPS, HEADS, HEAD_DIM))
    start = time.perf_counter()
    for step in range(TIMED_STEPS):
        policy.decode_step(queries[step], new_keys[step], new_values[step], position)
        position += 1
    return (time.perf_counter() - start) / TIMED_STEPS * 1e6


def test_vectorized_policy_faster_than_seed_at_capacity_576(benchmark, results_dir):
    config = PruningConfig.paper_circuit_default()  # H=512, M=64 -> 576 slots
    vectorized = UniCAIMPolicy(HEADS, HEAD_DIM, config=config)
    seed_replica = SeedReferencePolicy(HEADS, HEAD_DIM, config=config)

    def run():
        return (
            time_policy_steps(vectorized),
            time_policy_steps(seed_replica),
        )

    vec_us, seed_us = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "UniCAIMPolicy.decode_step at capacity 576 (paper circuit default)",
        f"seed-replica : {seed_us:8.1f} us/step",
        f"vectorized   : {vec_us:8.1f} us/step",
        f"speedup      : {seed_us / vec_us:8.2f}x",
    ]
    write_report(results_dir, "serving_policy_step_cost", "\n".join(lines))
    print("\n".join(lines))
    assert vec_us < seed_us
