"""Fig. 11: energy breakdown and energy versus sequence lengths."""

from conftest import write_report

from repro.analysis import fig11_energy
from repro.energy import DesignPoint


def test_fig11_energy_breakdown_and_sweeps(benchmark, results_dir):
    data = benchmark(fig11_energy)

    lines = ["Fig. 11(a) — per-decoding-step energy breakdown at the reference workload",
             f"{'design':>22}  {'array':>9}  {'ADC':>9}  {'top-k':>9}  {'CAM':>9}  {'total':>9}  (nJ)"]
    for design, breakdown in data["breakdowns"].items():
        lines.append(
            f"{design.value:>22}  {breakdown.array * 1e9:>9.2f}  {breakdown.adc * 1e9:>9.2f}"
            f"  {breakdown.topk * 1e9:>9.2f}  {breakdown.cam * 1e9:>9.3f}"
            f"  {breakdown.total * 1e9:>9.2f}"
        )

    dense = data["breakdowns"][DesignPoint.NO_PRUNING]
    ours = data["breakdowns"][DesignPoint.UNICAIM_1BIT]
    conventional = data["breakdowns"][DesignPoint.CONVENTIONAL_DYNAMIC]
    lines.append("")
    lines.append(f"UniCAIM / dense energy ratio: {ours.total / dense.total:.2f} (paper: 0.19)")
    lines.append(
        f"conventional dynamic / dense ratio: {conventional.total / dense.total:.2f} (paper: 0.91)"
    )

    lines.append("")
    lines.append("Fig. 11(b) — generation energy (nJ) vs input length (output = 64)")
    for design, series in data["vs_input_length"].items():
        values = "  ".join(f"{value * 1e9:>9.1f}" for value in series)
        lines.append(f"{design.value:>22}  {values}")
    lines.append("")
    lines.append("Fig. 11(c) — generation energy (nJ) vs output length (input = 2048)")
    for design, series in data["vs_output_length"].items():
        values = "  ".join(f"{value * 1e9:>9.1f}" for value in series)
        lines.append(f"{design.value:>22}  {values}")
    write_report(results_dir, "fig11_energy", "\n".join(lines))

    # Headline shapes from the paper.
    assert dense.adc > 0.7 * dense.total          # ADC dominates dense attention
    assert ours.total < 0.3 * dense.total          # ~0.19x at 20 % keep ratio
    assert 0.7 < conventional.total / dense.total < 1.1
    # The saving grows with input length (5.3x -> 27x trend in the paper).
    dense_series = data["vs_input_length"][DesignPoint.NO_PRUNING]
    ours_series = data["vs_input_length"][DesignPoint.UNICAIM_1BIT]
    assert dense_series[-1] / ours_series[-1] > dense_series[0] / ours_series[0]
