"""Fig. 8: charge-domain accumulation and static eviction."""

import numpy as np
from conftest import write_report

from repro.analysis import fig8_charge_accumulation


def test_fig8_charge_domain_static_eviction(benchmark, results_dir):
    trace = benchmark(
        fig8_charge_accumulation, num_rows=16, dim=64, steps=24, seed=3
    )

    lines = ["Fig. 8 — accumulated similarity voltages after 24 decoding steps",
             f"{'row':>4}  {'V_acc (V)':>10}  {'EWMA MAC':>10}  {'mean MAC':>10}"]
    for row in range(len(trace.accumulated_voltages)):
        lines.append(
            f"{row:>4}  {trace.accumulated_voltages[row]:>10.4f}  "
            f"{trace.ewma_similarity[row]:>10.2f}  "
            f"{trace.true_mean_similarity[row]:>10.2f}"
        )
    lines.append(f"FE-INV eviction victim: row {trace.victim_row}")
    lines.append(f"row with lowest mean similarity: row {trace.true_lowest_row}")
    write_report(results_dir, "fig08_charge_accumulation", "\n".join(lines))

    # The accumulation capacitor holds an exponentially weighted running
    # average of the similarity: it must track the equally-weighted EWMA of
    # the true MAC values closely, and the evicted row must sit in the
    # low-similarity tail of the long-run mean.
    corr = np.corrcoef(trace.accumulated_voltages, trace.ewma_similarity)[0, 1]
    assert corr > 0.8
    victim_rank = np.argsort(trace.true_mean_similarity).tolist().index(trace.victim_row)
    assert victim_rank <= len(trace.true_mean_similarity) // 4
