"""Table II: AEDP comparison against Sprint, TranCIM and CIMFormer."""

from conftest import write_report

from repro.analysis import PAPER_TABLE2_REDUCTIONS, format_table1
from repro.energy import format_table, reduction_table, table2_comparison


def test_table2_aedp_comparison(benchmark, results_dir):
    rows = benchmark(table2_comparison)

    ours = reduction_table(rows)
    lines = ["Table I — qualitative feature comparison", format_table1(), ""]
    lines += ["Table II — AEDP comparison (same pruning ratio for every design)",
              format_table(rows), ""]
    lines.append("AEDP reduction factors, measured vs paper:")
    lines.append(f"{'condition':>12}  {'baseline':>10}  {'measured':>9}  {'paper':>7}")
    for condition, row in ours.items():
        for baseline, measured in row.items():
            paper = PAPER_TABLE2_REDUCTIONS[condition][baseline]
            lines.append(
                f"{condition:>12}  {baseline:>10}  {measured:>8.1f}x  {paper:>6.1f}x"
            )
    write_report(results_dir, "table2_aedp", "\n".join(lines))

    # Shape checks: UniCAIM wins against every baseline under every
    # condition; the ordering of the baselines matches the paper
    # (CIMFormer worst, Sprint best); and the reduction improves with the
    # 3-bit cell and with a higher pruning ratio.
    for condition, row in ours.items():
        assert all(reduction > 1.0 for reduction in row.values())
        assert row["CIMFormer"] > row["TranCIM"] > row["Sprint"]
    assert ours["50%/3-bit"]["Sprint"] > ours["50%/1-bit"]["Sprint"]
    assert ours["80%/1-bit"]["Sprint"] > ours["50%/1-bit"]["Sprint"]
