"""Fig. 10: required device count versus input / output sequence length."""

from conftest import write_report

from repro.analysis import fig10_area_sweeps
from repro.energy import DesignPoint


def test_fig10_device_count_sweeps(benchmark, results_dir):
    data = benchmark(fig10_area_sweeps)

    designs = list(data["vs_input_length"].keys())
    lines = ["Fig. 10 — required device count under different pruning conditions", ""]

    lines.append("(a) versus input sequence length (output = 64)")
    header = f"{'input len':>10}" + "".join(f"  {d.value:>22}" for d in designs)
    lines.append(header)
    for idx, length in enumerate(data["input_lengths"]):
        row = f"{length:>10}"
        for design in designs:
            row += f"  {data['vs_input_length'][design][idx]:>22,}"
        lines.append(row)

    lines.append("")
    lines.append("(b) versus output sequence length (input = 512)")
    lines.append(header.replace("input len", "output len"))
    for idx, length in enumerate(data["output_lengths"]):
        row = f"{length:>10}"
        for design in designs:
            row += f"  {data['vs_output_length'][design][idx]:>22,}"
        lines.append(row)

    dense = data["vs_input_length"][DesignPoint.NO_PRUNING]
    ours_3bit = data["vs_input_length"][DesignPoint.UNICAIM_3BIT]
    lines.append("")
    lines.append(
        f"device-count reduction (3-bit cell) at the longest input: "
        f"{dense[-1] / ours_3bit[-1]:.1f}x"
    )
    write_report(results_dir, "fig10_area", "\n".join(lines))

    # Shape: the dense design grows with length, the UniCAIM cache is fixed,
    # and the reduction therefore grows with sequence length.
    assert dense[-1] > dense[0]
    assert ours_3bit[-1] == ours_3bit[0]
    assert dense[-1] / ours_3bit[-1] > dense[0] / ours_3bit[0]
