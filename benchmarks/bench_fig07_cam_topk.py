"""Fig. 7: CAM-mode O(1) top-k selection via the sense-line discharge race."""

import numpy as np
from conftest import write_report

from repro.analysis import fig7_cam_topk
from repro.devices import VariationModel


def run_traces():
    paper_example = fig7_cam_topk(num_keys=9, dim=4, k=3, key_bits=1, seed=0)
    realistic = fig7_cam_topk(
        num_keys=128, dim=128, k=16, key_bits=3, seed=1,
        variation=VariationModel.paper_default(seed=1),
    )
    return paper_example, realistic


def test_fig7_cam_topk_selection(benchmark, results_dir):
    paper_example, realistic = benchmark(run_traces)

    lines = ["Fig. 7 — CAM-mode top-k selection",
             "",
             "Paper example: top-3 of 9 keys, d=4, ternary key/query",
             f"{'row':>4}  {'MAC':>5}  {'discharge time (ns)':>20}  {'selected':>9}"]
    selected = set(int(r) for r in paper_example.selected_rows)
    for row in range(len(paper_example.attention_scores)):
        time_ns = paper_example.discharge_times_ns[row]
        time_text = f"{time_ns:.2f}" if np.isfinite(time_ns) else "inf"
        lines.append(
            f"{row:>4}  {paper_example.attention_scores[row]:>5.0f}  "
            f"{time_text:>20}  {'yes' if row in selected else 'no':>9}"
        )
    lines.append(f"search stop time: {paper_example.stop_time_ns:.2f} ns")
    lines.append("")
    lines.append(
        "Realistic array (128 keys, d=128, 3-bit cells, 54 mV variation): "
        f"top-16 recall vs exact = {realistic.recall_vs_exact:.2f}"
    )
    write_report(results_dir, "fig07_cam_topk", "\n".join(lines))

    # Every selected row's score must be at least the k-th largest score.
    scores = paper_example.attention_scores
    kth = np.sort(scores)[::-1][2]
    assert all(scores[row] >= kth for row in selected)
    assert realistic.recall_vs_exact >= 0.7
