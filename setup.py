"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on offline machines where the
``wheel`` package (required by PEP 660 editable builds) is unavailable:

    pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
